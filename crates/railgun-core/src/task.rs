//! Task processors (paper §4.1).
//!
//! A task processor computes **all metrics of one (topic, partition)**. It
//! owns, share-nothing: an event reservoir, a state store, and the task
//! plan DAG. Everything runs on the processor unit's single thread.
//!
//! ## Window mechanics
//!
//! Evaluation is event-driven: a new event with timestamp `T` evaluates
//! every window at `T_eval = T + 1ms` (the "moment right after" the event,
//! §2). Per window, with size `ws` and delay `d`:
//!
//! * `upper = T + 1 − d`, `lower = upper − ws`;
//! * the **tail** cursor advances to `lower`, yielding expiring events;
//! * the **head** cursor advances to `upper`, yielding entering events
//!   (the arriving event itself for plain sliding windows; older events
//!   crossing the delayed boundary for `delayed by` windows; historic
//!   events during metric backfill);
//! * an arriving event already *behind* the head bound but inside the
//!   window (a late event) is inserted directly — the reservoir guarantees
//!   the head cursor skipped it, so it enters exactly once.
//!
//! The tail-side contract with the reservoir (see
//! `railgun-reservoir::reservoir` docs) guarantees every inserted event is
//! yielded for eviction exactly once, so incremental aggregators stay
//! exact.

use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use railgun_reservoir::{AppendOutcome, Cursor, Reservoir, ReservoirConfig};
use railgun_store::{CfOptions, ColumnFamilyId, Db, DbOptions, RealFs};
use railgun_types::{
    Counter, Event, RailgunError, Result, Schema, TimeDelta, Timestamp, Value,
};

use crate::agg::{AggContext, AggScratch, AggState};
use crate::api::{AggregationResult, QueryId};
use crate::horizon::{AuxKeyFilter, StateHorizon, StateKeyFilter};
use crate::keys::{leaf_prefix, state_key};
use crate::lang::{Query, WindowKind};
use crate::metrics::{SharedTaskStats, TaskStatsRegistry};
use crate::plan::{LeafId, MetricHandle, Plan, WindowId};

/// Tuning for a task processor.
#[derive(Debug, Clone)]
pub struct TaskConfig {
    pub reservoir: ReservoirConfig,
    pub store: DbOptions,
    /// Run reservoir truncation every this many events (0 = never).
    pub truncate_every: u64,
    /// Extra retention beyond the largest window (safety margin).
    pub retention_margin: TimeDelta,
    /// Registry new task processors publish their [`SharedTaskStats`] to,
    /// making [`TaskStats`] reachable cluster-wide (even while the
    /// threaded runtime owns the processors). The default is a private
    /// registry per config; the cluster injects its shared one.
    pub stats_registry: TaskStatsRegistry,
    /// Bumped when [`TaskProcessor::restore_or_replay`] rejects a
    /// corrupt/partial checkpoint and falls back to a full topic replay.
    /// Disabled by default; the cluster injects its telemetry counter.
    pub checkpoint_fallbacks: Counter,
}

impl Default for TaskConfig {
    fn default() -> Self {
        TaskConfig {
            reservoir: ReservoirConfig::default(),
            store: DbOptions::default(),
            truncate_every: 4096,
            retention_margin: TimeDelta::from_minutes(1),
            stats_registry: TaskStatsRegistry::default(),
            checkpoint_fallbacks: Counter::disabled(),
        }
    }
}

/// How [`TaskProcessor::restore_or_replay`] recovered a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestoreOutcome {
    /// The checkpoint image was complete and verified: the caller only
    /// replays events from the checkpoint's recorded offset onward.
    FromCheckpoint,
    /// The checkpoint was missing, partial, or corrupt: the task started
    /// from an empty image and the caller must replay the topic from the
    /// beginning. At-least-once replay makes this merely slow, never
    /// wrong (the reservoir dedups by event id).
    FullReplay,
}

/// Monotonic counters for one task processor (a point-in-time snapshot
/// of its [`SharedTaskStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaskStats {
    pub events_processed: u64,
    pub duplicates: u64,
    pub late_dropped: u64,
    pub inserts: u64,
    pub evictions: u64,
    pub state_reads: u64,
    pub state_writes: u64,
}

struct WindowRuntime {
    head: Cursor,
    tail: Option<Cursor>,
    /// Head bound before the current event's advance — the authority for
    /// the direct-insert rule (see module docs).
    head_bound: Timestamp,
    /// Monotonic lower bound the tail cursor has reached. Insertion gates
    /// compare against this (not the current event's instantaneous lower
    /// bound) so a late or rewritten event is inserted iff the tail will
    /// still yield it for eviction — keeping insert/evict exactly paired.
    tail_bound: Timestamp,
}

/// Computes all metrics of one (topic, partition).
pub struct TaskProcessor {
    topic: String,
    partition: u32,
    schema: Schema,
    plan: Plan,
    reservoir: Reservoir,
    db: Db,
    aux_cf: ColumnFamilyId,
    /// One runtime per plan window node, index-aligned with
    /// `plan.windows`. `None` = the window died with its last query
    /// (cursors dropped, §5.2's iterator count shrinks accordingly).
    windows: Vec<Option<WindowRuntime>>,
    config: TaskConfig,
    /// Shared atomic counters, published to the config's registry so the
    /// metrics plane can read them while a worker thread owns this task.
    stats: Arc<SharedTaskStats>,
    events_since_truncate: u64,
    /// Per-window scratch buffers reused across events (hot path).
    expired_bufs: Vec<Vec<Event>>,
    entering_buf: Vec<Event>,
    encode_buf: Vec<u8>,
    entity_buf: Vec<Value>,
    /// Per-task scratch for aggregator aux keys plus the in-memory sketch
    /// cache (flushed to the aux CF at checkpoints — see [`AggScratch`]).
    agg_scratch: AggScratch,
    /// Shared expiry watermarks read by the store's compaction filters
    /// (see [`crate::horizon`]): expired tumbling buckets and the state
    /// of unregistered queries are dropped during compactions instead of
    /// costing a point delete each.
    horizon: Arc<StateHorizon>,
    meta_cf: ColumnFamilyId,
}

/// Name of the auxiliary column family for `countDistinct`.
const AUX_CF_NAME: &str = "distinct-aux";

/// Name of the metadata column family (reclamation markers, tiny).
const META_CF_NAME: &str = "task-meta";

/// Meta-CF key holding the pending dead leaf prefixes as concatenated
/// 4-byte chunks. Present iff an unregistration's state reclaim has not
/// yet completed — leaf ids restart per incarnation, so a restart must
/// finish the reclaim *before* the plan can hand those ids out again.
const DEAD_PREFIXES_KEY: &[u8] = b"dead-prefixes";

/// Install the watermark compaction filters and derived per-CF tuning on
/// a task's store options. Tuning derives from the global knobs (so a
/// config that sets `memtable_budget_bytes` keeps governing the default
/// CF): the aux CF gets a quarter of the write budget, a lazier
/// compaction trigger, and denser blooms (point-lookup heavy); the meta
/// CF stays tiny. Caller-supplied `cf_options` entries win, but still
/// get the horizon filter if they did not set one — the reclaim path
/// relies on it.
fn install_horizon_filters(opts: &mut DbOptions, horizon: &Arc<StateHorizon>) {
    let derived: [(&str, CfOptions); 3] = [
        (
            "default",
            CfOptions {
                memtable_budget_bytes: opts.memtable_budget_bytes,
                compaction_trigger: opts.compaction_trigger,
                bloom_bits_per_key: opts.bloom_bits_per_key,
                filter: Some(Arc::new(StateKeyFilter(Arc::clone(horizon)))),
            },
        ),
        (
            AUX_CF_NAME,
            CfOptions {
                memtable_budget_bytes: (opts.memtable_budget_bytes / 4).max(64 << 10),
                compaction_trigger: opts.compaction_trigger.saturating_add(2),
                bloom_bits_per_key: match opts.bloom_bits_per_key {
                    0 => 0, // blooms disabled (ablation) — keep them off
                    b => b + 2,
                },
                filter: Some(Arc::new(AuxKeyFilter(Arc::clone(horizon)))),
            },
        ),
        (META_CF_NAME, CfOptions::meta()),
    ];
    for (name, cf) in derived {
        match opts.cf_options.iter_mut().find(|(n, _)| n == name) {
            Some((_, existing)) => {
                if existing.filter.is_none() {
                    existing.filter = cf.filter;
                }
            }
            None => opts.cf_options.push((name.to_owned(), cf)),
        }
    }
}

impl TaskProcessor {
    /// Open (or recover) a task processor rooted at `dir`.
    pub fn open(
        dir: &Path,
        topic: &str,
        partition: u32,
        schema: Schema,
        config: TaskConfig,
    ) -> Result<Self> {
        std::fs::create_dir_all(dir)?;
        let reservoir = Reservoir::open(
            &dir.join("reservoir"),
            schema.clone(),
            config.reservoir.clone(),
        )?;
        let horizon = StateHorizon::new();
        let mut store_opts = config.store.clone();
        install_horizon_filters(&mut store_opts, &horizon);
        let db = Db::open(&dir.join("store"), store_opts)?;
        let aux_cf = match db.cf_by_name(AUX_CF_NAME) {
            Some(cf) => cf,
            None => db.create_cf(AUX_CF_NAME)?,
        };
        let meta_cf = match db.cf_by_name(META_CF_NAME) {
            Some(cf) => cf,
            None => db.create_cf(META_CF_NAME)?,
        };
        // A persisted marker means a reclaim was cut short (crash between
        // the unregistration and its compactions): reload the prefixes
        // and finish the job below, before any query registers new
        // leaves under the same ids.
        if let Some(raw) = db.get(meta_cf, DEAD_PREFIXES_KEY)? {
            for chunk in raw.chunks_exact(4) {
                horizon.add_dead_prefix([chunk[0], chunk[1], chunk[2], chunk[3]]);
            }
        }
        let stats = Arc::new(SharedTaskStats::default());
        config.stats_registry.register(&stats);
        let tp = TaskProcessor {
            topic: topic.to_owned(),
            partition,
            schema,
            plan: Plan::new(),
            reservoir,
            db,
            aux_cf,
            windows: Vec::new(),
            config,
            stats,
            events_since_truncate: 0,
            expired_bufs: Vec::new(),
            entering_buf: Vec::new(),
            encode_buf: Vec::with_capacity(64),
            entity_buf: Vec::with_capacity(4),
            agg_scratch: AggScratch::default(),
            horizon,
            meta_cf,
        };
        if tp.horizon.has_dead() {
            tp.reclaim_dead_state()?;
        }
        Ok(tp)
    }

    /// Reclaim the state behind every pending dead prefix: flush the
    /// memtables (filters only see SSTables), compact the filtered CFs
    /// so their keys vanish, then clear the marker. Idempotent — a crash
    /// anywhere before the final delete re-runs the whole reclaim at the
    /// next open, which is safe because the filters only ever drop keys
    /// under prefixes nothing live can use until the marker is gone.
    fn reclaim_dead_state(&self) -> Result<()> {
        self.db.flush()?;
        self.db.compact_cf(Db::DEFAULT_CF)?;
        self.db.compact_cf(self.aux_cf)?;
        self.horizon.clear_dead_prefixes();
        self.db.delete(self.meta_cf, DEAD_PREFIXES_KEY)?;
        Ok(())
    }

    /// The (topic, partition) this task serves.
    pub fn task_id(&self) -> (&str, u32) {
        (&self.topic, self.partition)
    }

    /// The stream schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Register a query's metrics on this task under an anonymous id
    /// derived from the query text (convenience for single-process and
    /// test use; the cluster path assigns front-end ids — see
    /// [`TaskProcessor::register_query_as`]).
    pub fn register_query(&mut self, query: &Query) -> Result<Vec<MetricHandle>> {
        self.register_query_as(derived_query_id(query), query)
    }

    /// Register a query's metrics on this task under `id`. New windows
    /// create head and tail cursors; the head starts far enough back to
    /// **backfill** the new metric from events already in the reservoir
    /// (§6's future work, supported here via the reservoir's random
    /// reads). Re-registering the same id is idempotent.
    pub fn register_query_as(
        &mut self,
        id: QueryId,
        query: &Query,
    ) -> Result<Vec<MetricHandle>> {
        self.attach_query(id, query, true)
    }

    /// Re-attach a query to a processor restored from a checkpoint image
    /// (see [`TaskProcessor::restore_or_replay`]). The restored state
    /// store already carries this query's aggregate state through the
    /// checkpointed offset, so — unlike [`register_query_as`], which
    /// backfills new windows from the reservoir — the new window runtime
    /// starts *at the end* of the restored reservoir: only events
    /// appended after the restore (the replayed tail) flow into the
    /// leaves. Backfilling here would double-count every restored event
    /// that is both reflected in the leaf state and present in the
    /// image's reservoir segments.
    ///
    /// [`register_query_as`]: TaskProcessor::register_query_as
    pub fn reattach_query_as(
        &mut self,
        id: QueryId,
        query: &Query,
    ) -> Result<Vec<MetricHandle>> {
        self.attach_query(id, query, false)
    }

    fn attach_query(
        &mut self,
        id: QueryId,
        query: &Query,
        backfill: bool,
    ) -> Result<Vec<MetricHandle>> {
        let pre_leaf_count = self.plan.leaves.len();
        let pre_window_count = self.windows.len();
        let handles = self.plan.add_query(id, query, &self.schema)?;
        // Create runtimes for any window nodes added by this query.
        while self.windows.len() < self.plan.windows.len() {
            let wid = self.windows.len();
            let spec = self.plan.windows[wid].spec;
            let max_seen = self.reservoir.max_seen_ts();
            let from = match spec.kind {
                WindowKind::Sliding(ws) => {
                    // Only events that could still be in the window matter.
                    if max_seen == Timestamp::MIN {
                        Timestamp::MIN
                    } else {
                        max_seen.saturating_sub(ws + spec.delay)
                    }
                }
                WindowKind::Tumbling(ws) => {
                    if max_seen == Timestamp::MIN {
                        Timestamp::MIN
                    } else {
                        max_seen.saturating_sub(ws + spec.delay)
                    }
                }
                // Infinite windows backfill the full history.
                WindowKind::Infinite => Timestamp::MIN,
            };
            // Re-attach: the leaf state already covers everything up to
            // `max_seen`, so the head skips the stored history (and the
            // head bound marks it as already-flowed, which keeps the
            // late-arrival direct-insert path and any *later* new-query
            // backfill correct). The tail still starts at the window
            // boundary — restored events must be evicted normally as the
            // window slides past them.
            let (head_from, head_bound) = if backfill || max_seen == Timestamp::MIN {
                (from, Timestamp::MIN)
            } else {
                (max_seen.saturating_add(TimeDelta::from_millis(1)), max_seen)
            };
            let head = self.reservoir.cursor_at(head_from);
            let tail = match spec.kind {
                WindowKind::Sliding(_) => Some(self.reservoir.cursor_at(from)),
                _ => None,
            };
            self.windows.push(Some(WindowRuntime {
                head,
                tail,
                head_bound,
                tail_bound: Timestamp::MIN,
            }));
        }
        // A brand-new leaf attached to a *pre-existing* window gets no
        // events from that window's (already advanced) head cursor, so it
        // must backfill the window's current content directly — otherwise
        // a metric re-registered onto a shared window (or a new
        // aggregation added to one) would silently start from zero. On
        // re-attach the leaf state arrived with the image; nothing to do.
        if backfill {
            let mut seen = Vec::new();
            for h in &handles {
                if h.leaf < pre_leaf_count || seen.contains(&h.leaf) {
                    continue; // shared leaf: its state is already live
                }
                seen.push(h.leaf);
                if self.plan.leaves[h.leaf].window < pre_window_count {
                    self.backfill_leaf(h.leaf)?;
                }
            }
        }
        Ok(handles)
    }

    /// Replay the current content of an existing window into one fresh
    /// leaf (filter applied, inserts only). The window's in-content range
    /// is derived from its runtime bounds: events already inserted
    /// (`ts < head_bound`) and not yet evicted.
    fn backfill_leaf(&mut self, leaf: LeafId) -> Result<()> {
        let leaf_node = &self.plan.leaves[leaf];
        let (wid, fid, gid) = (leaf_node.window, leaf_node.filter, leaf_node.group);
        let Some(wr) = self.windows[wid].as_ref() else {
            return Ok(());
        };
        let upper = wr.head_bound;
        if upper == Timestamp::MIN {
            // Nothing has flowed through the window yet: the head cursor
            // still covers everything the leaf needs to see.
            return Ok(());
        }
        let spec = self.plan.windows[wid].spec;
        let lower = match spec.kind {
            WindowKind::Sliding(_) => wr.tail_bound,
            // Only the bucket the window currently reports matters.
            WindowKind::Tumbling(ws) => (upper - TimeDelta::from_millis(1)).align_down(ws),
            WindowKind::Infinite => Timestamp::MIN,
        };
        let cursor = self.reservoir.cursor_at(lower);
        let mut events = Vec::new();
        cursor.advance_upto_into(upper, &mut events);
        drop(cursor);
        for event in &events {
            let passes = match &self.plan.filters[fid].expr {
                Some(expr) => expr.matches(event.values()),
                None => true,
            };
            if passes {
                self.update_leaf(leaf, gid, event, true)?;
            }
        }
        Ok(())
    }

    /// Tear down a registered query: detach its metrics from the plan,
    /// delete the aggregator state of leaves nothing else shares, and
    /// drop the reservoir cursors of windows no other query uses.
    ///
    /// Returns `true` iff the query had metrics on this task.
    pub fn unregister_query(&mut self, id: QueryId) -> Result<bool> {
        let diff = self.plan.remove_query(id);
        if diff.removed_refs == 0 {
            return Ok(false);
        }
        // Dead-leaf state is reclaimed through the compaction filters
        // rather than per-key point deletes: mark the prefixes dead,
        // persist the marker (a crash before the compactions finish must
        // resume the reclaim at the next open — leaf ids restart per
        // incarnation), then flush + compact the filtered CFs. The aux
        // CF needs no scan at all: its filter decodes the embedded state
        // key, so counters and sketch blobs of dead leaves fall out of
        // the same merge.
        if !diff.dead_leaves.is_empty() {
            for &leaf in &diff.dead_leaves {
                let prefix = leaf_prefix(leaf as u32);
                // Drop cached sketches first so a later scratch flush
                // cannot resurrect blobs the compaction drops.
                self.agg_scratch.drop_prefix(&prefix);
                self.horizon.add_dead_prefix(prefix);
            }
            let mut marker = Vec::with_capacity(4 * diff.dead_leaves.len());
            for p in self.horizon.dead_prefixes() {
                marker.extend_from_slice(&p);
            }
            self.db.put(self.meta_cf, DEAD_PREFIXES_KEY, &marker)?;
            self.reclaim_dead_state()?;
        }
        for &wid in &diff.dead_windows {
            // Dropping the runtime drops its head/tail cursors — the
            // §5.2(b) iterator count shrinks immediately.
            self.windows[wid] = None;
        }
        Ok(true)
    }

    /// The ids of the queries registered on this task.
    pub fn query_ids(&self) -> Vec<QueryId> {
        self.plan.query_ids()
    }

    /// Process one event end-to-end: advance windows, store the event,
    /// update every aggregation, and return the results for this event's
    /// entities.
    pub fn process_event(&mut self, event: &Event) -> Result<(Vec<AggregationResult>, bool)> {
        self.schema.check_values(event.values())?;
        let t_eval = event.ts + TimeDelta::from_millis(1);
        self.stats.events_processed.fetch_add(1, Ordering::Relaxed);

        // Phase 1: advance every tail (expirations) BEFORE the append, so
        // the reservoir's late-event fixups see the new bounds.
        let nwindows = self.windows.len();
        self.expired_bufs.resize_with(nwindows, Vec::new);
        for wid in 0..nwindows {
            let spec = self.plan.windows[wid].spec;
            self.expired_bufs[wid].clear();
            let Some(wr) = self.windows[wid].as_mut() else {
                continue; // window torn down with its last query
            };
            if let (WindowKind::Sliding(ws), Some(tail)) = (spec.kind, wr.tail.as_ref()) {
                let lower = t_eval - spec.delay - ws;
                tail.advance_upto_into(lower, &mut self.expired_bufs[wid]);
                wr.tail_bound = wr.tail_bound.max(lower);
            }
        }

        // Phase 2: append to the reservoir (dedup + late policy). Only the
        // stored timestamp is tracked here; the event itself is cloned
        // just on the rare direct-insert path below (`Event` clones are
        // cheap Arc bumps, but per-event work on this path adds up).
        let outcome = self.reservoir.append(event.clone())?;
        let (effective_ts, duplicate) = match outcome {
            AppendOutcome::Appended => (Some(event.ts), false),
            AppendOutcome::LateRewritten(ts) => (Some(ts), false),
            AppendOutcome::Duplicate => {
                self.stats.duplicates.fetch_add(1, Ordering::Relaxed);
                (None, true)
            }
            AppendOutcome::LateDiscarded => {
                self.stats.late_dropped.fetch_add(1, Ordering::Relaxed);
                (None, false)
            }
        };

        // Phase 3: per window, collect entering events and apply the DAG.
        for wid in 0..nwindows {
            if self.windows[wid].is_none() {
                continue;
            }
            let spec = self.plan.windows[wid].spec;
            let upper = t_eval - spec.delay;
            let lower = match spec.kind {
                WindowKind::Sliding(ws) => upper - ws,
                WindowKind::Tumbling(_) | WindowKind::Infinite => Timestamp::MIN,
            };
            let wr = self.windows[wid].as_mut().expect("checked above");
            let head_bound_pre = wr.head_bound;
            let mut entering = std::mem::take(&mut self.entering_buf);
            entering.clear();
            wr.head.advance_upto_into(upper, &mut entering);
            wr.head_bound = wr.head_bound.max(upper);
            // Direct insert of a late (or timestamp-rewritten) arrival that
            // the head's fixup skipped (ts < head_bound_pre). The lower
            // gate is the tail cursor's *monotonic* bound: an event at or
            // above it will be yielded for eviction exactly once, so
            // inserting it here keeps the streams paired; anything below it
            // was skipped by the tail too and must not enter.
            let _ = lower;
            let tail_gate = wr.tail_bound;
            if let Some(ts) = effective_ts {
                if ts < head_bound_pre && ts >= tail_gate {
                    entering.push(if ts == event.ts {
                        event.clone()
                    } else {
                        Event::new(event.id, ts, event.values().to_vec())
                    });
                }
            }
            // Expire first, then insert (same relative order as the
            // physical streams; aggregators only need each stream's own
            // order to be consistent).
            let expired = std::mem::take(&mut self.expired_bufs[wid]);
            for e in &expired {
                self.apply_dag(wid, e, false)?;
            }
            for e in &entering {
                self.apply_dag(wid, e, true)?;
            }
            self.stats.evictions.fetch_add(expired.len() as u64, Ordering::Relaxed);
            self.stats.inserts.fetch_add(entering.len() as u64, Ordering::Relaxed);
            self.expired_bufs[wid] = expired;
            self.entering_buf = entering;
        }

        // Phase 4: collect reply values for this event's entities.
        let results = self.collect_results(event, t_eval)?;

        // Phase 5: periodic retention.
        self.events_since_truncate += 1;
        if self.config.truncate_every > 0
            && self.events_since_truncate >= self.config.truncate_every
        {
            self.events_since_truncate = 0;
            self.maybe_truncate(t_eval)?;
        }
        Ok((results, duplicate))
    }

    /// Process a run of events in arrival order, handing each event's
    /// `(index, results, duplicate)` to `sink` as it completes.
    ///
    /// Window semantics are inherently per-event — every event's reply
    /// reflects the window state *at that event* (tail advance, append,
    /// head advance, DAG, collect), so batching here cannot reorder or
    /// fuse those phases without changing results. What a batch amortizes
    /// is everything around the task: the caller decodes a whole run into
    /// reused scratch, updates offsets once, and publishes all replies as
    /// one bus batch.
    pub fn process_batch<'a, I, F>(&mut self, events: I, mut sink: F) -> Result<()>
    where
        I: IntoIterator<Item = &'a Event>,
        F: FnMut(usize, Vec<AggregationResult>, bool),
    {
        for (idx, event) in events.into_iter().enumerate() {
            let (results, duplicate) = self.process_event(event)?;
            sink(idx, results, duplicate);
        }
        Ok(())
    }

    /// Walk the DAG below window `wid` for one entering/expiring event.
    fn apply_dag(&mut self, wid: WindowId, event: &Event, insert: bool) -> Result<()> {
        let values = event.values();
        let nfilters = self.plan.windows[wid].filters.len();
        for fi in 0..nfilters {
            let fid = self.plan.windows[wid].filters[fi];
            let passes = match &self.plan.filters[fid].expr {
                Some(expr) => expr.matches(values),
                None => true,
            };
            if !passes {
                continue;
            }
            let ngroups = self.plan.filters[fid].groups.len();
            for gi in 0..ngroups {
                let gid = self.plan.filters[fid].groups[gi];
                let nleaves = self.plan.groups[gid].leaves.len();
                for li in 0..nleaves {
                    let leaf = self.plan.groups[gid].leaves[li];
                    self.update_leaf(leaf, gid, event, insert)?;
                }
            }
        }
        Ok(())
    }

    fn update_leaf(
        &mut self,
        leaf: LeafId,
        gid: usize,
        event: &Event,
        insert: bool,
    ) -> Result<()> {
        let group = &self.plan.groups[gid];
        let leaf_node = &self.plan.leaves[leaf];
        let spec = self.plan.windows[leaf_node.window].spec;
        let bucket = match spec.kind {
            WindowKind::Tumbling(ws) => Some(event.ts.align_down(ws)),
            _ => None,
        };
        // Reused scratch: one entity tuple per (event, leaf) on the hot
        // path would otherwise allocate per state update.
        let mut entity = std::mem::take(&mut self.entity_buf);
        entity.clear();
        for &i in &group.field_indexes {
            entity.push(event.value(i).cloned().unwrap_or(Value::Null));
        }
        let key = state_key(leaf as u32, bucket, &entity);
        entity.clear();
        self.entity_buf = entity;
        let field_value = leaf_node.field_index.map(|i| &event.values()[i]);

        self.stats.state_reads.fetch_add(1, Ordering::Relaxed);
        let mut state = match self.db.get_in(Db::DEFAULT_CF, &key, AggState::decode)? {
            Some(decoded) => decoded?,
            None => AggState::new(leaf_node.func),
        };
        let mut ctx = AggContext::new(&self.db, self.aux_cf, &key, &self.agg_scratch);
        if let WindowKind::Sliding(ws) = spec.kind {
            // Sketch-backed leaves route inserts into time panes and
            // expire whole panes once the tail bound passes them.
            let lower = match &self.windows[leaf_node.window] {
                Some(wr) => wr.tail_bound.as_millis(),
                None => i64::MIN,
            };
            ctx = ctx.windowed(event.ts.as_millis(), lower, ws.as_millis());
        }
        if insert {
            state.insert(field_value, &ctx)?;
        } else {
            state.evict(field_value, &ctx)?;
        }
        self.encode_buf.clear();
        state.encode(&mut self.encode_buf);
        self.stats.state_writes.fetch_add(1, Ordering::Relaxed);
        self.db.put(Db::DEFAULT_CF, &key, &self.encode_buf)
    }

    /// Read the current value of every live leaf for the event's
    /// entities, emitting one keyed result per registered metric — a leaf
    /// shared by several queries is read once and reported under each
    /// `(query, index)` key.
    fn collect_results(
        &mut self,
        event: &Event,
        t_eval: Timestamp,
    ) -> Result<Vec<AggregationResult>> {
        let mut out = Vec::with_capacity(self.plan.leaves.len());
        for (leaf_idx, leaf) in self.plan.leaves.iter().enumerate() {
            if !leaf.is_live() {
                continue; // unregistered
            }
            let group = &self.plan.groups[leaf.group];
            let spec = self.plan.windows[leaf.window].spec;
            let bucket = match spec.kind {
                WindowKind::Tumbling(ws) => {
                    // The bucket containing the (delay-shifted) eval point.
                    Some((t_eval - spec.delay - TimeDelta::from_millis(1)).align_down(ws))
                }
                _ => None,
            };
            let mut entity = Vec::with_capacity(group.field_indexes.len());
            for &i in &group.field_indexes {
                entity.push(event.value(i).cloned().unwrap_or(Value::Null));
            }
            let key = state_key(leaf_idx as u32, bucket, &entity);
            self.stats.state_reads.fetch_add(1, Ordering::Relaxed);
            let value = match self
                .db
                .get_in(Db::DEFAULT_CF, &key, |raw| AggState::decode(raw).map(|s| s.value()))?
            {
                Some(v) => v?,
                None => AggState::new(leaf.func).value(),
            };
            // Move entity/value into the last ref; clone only for the
            // extra refs of a shared leaf (refs.len() == 1 is the common
            // case — no per-event clone on the hot path).
            let last = leaf.refs.len() - 1;
            let mut value = value;
            for (i, r) in leaf.refs.iter().enumerate() {
                let (e, v) = if i == last {
                    (
                        std::mem::take(&mut entity),
                        std::mem::replace(&mut value, Value::Null),
                    )
                } else {
                    (entity.clone(), value.clone())
                };
                out.push(AggregationResult {
                    query: r.query,
                    index: r.index,
                    name: r.name.clone(),
                    entity: e,
                    value: v,
                });
            }
        }
        Ok(out)
    }

    fn maybe_truncate(&mut self, t_eval: Timestamp) -> Result<()> {
        if self.plan.has_infinite_window() {
            return Ok(()); // keep full history
        }
        // Only live windows bound retention; a torn-down window must not
        // keep pinning history. With no live metrics nothing bounds
        // retention — and future metrics may backfill from any depth — so
        // keep everything.
        let mut max_span = TimeDelta::ZERO;
        let mut any_live = false;
        for w in self.plan.windows.iter().filter(|w| !w.filters.is_empty()) {
            any_live = true;
            let span = match w.spec.kind {
                WindowKind::Sliding(ws) | WindowKind::Tumbling(ws) => ws + w.spec.delay,
                WindowKind::Infinite => return Ok(()),
            };
            if span > max_span {
                max_span = span;
            }
        }
        if !any_live {
            return Ok(());
        }
        let before = t_eval - max_span - self.config.retention_margin;
        // Advance the store's expiry watermark in lockstep with the
        // reservoir bound: a tumbling bucket older than the retention
        // horizon can never be read again (results are only collected at
        // the evaluation boundary), so the next compaction drops its
        // state instead of carrying it forever.
        self.horizon.advance_bucket_expiry(before.as_millis());
        self.reservoir.truncate_before(before)?;
        Ok(())
    }

    /// Block until the reservoir's queued chunk writes are durable (and
    /// unpinned from cache). Benches call this before measuring so the
    /// cache starts at its configured capacity — the paper's runs start
    /// from a fully-persisted checkpoint load.
    pub fn drain_reservoir_io(&self) -> Result<()> {
        self.reservoir.flush_io()?;
        Ok(())
    }

    /// Checkpoint reservoir and state store together (§4.1.3) into `dir`.
    pub fn checkpoint(&self, dir: &Path) -> Result<()> {
        std::fs::create_dir_all(dir)?;
        // Finish any pending dead-state reclaim first so the image does
        // not ship keys (and a marker) a restore would immediately have
        // to compact away again.
        if self.horizon.has_dead() {
            self.reclaim_dead_state()?;
        }
        // Sketch blobs live in an in-memory cache between checkpoints;
        // flush them so the store image carries the current estimates.
        self.agg_scratch.flush(&self.db, self.aux_cf)?;
        self.reservoir.checkpoint(&dir.join("reservoir"))?;
        self.db.checkpoint(&dir.join("store"))?;
        Ok(())
    }

    /// Restore a task processor from a checkpoint directory (as written by
    /// [`TaskProcessor::checkpoint`]) into a fresh data directory. Events
    /// after the checkpoint must be replayed from the messaging layer.
    pub fn restore_from_checkpoint(
        ckpt: &Path,
        dir: &Path,
        topic: &str,
        partition: u32,
        schema: Schema,
        config: TaskConfig,
    ) -> Result<Self> {
        if dir.exists() && dir.read_dir()?.next().is_some() {
            return Err(RailgunError::InvalidArgument(format!(
                "restore target {} is not empty",
                dir.display()
            )));
        }
        std::fs::create_dir_all(dir)?;
        copy_dir(&ckpt.join("reservoir"), &dir.join("reservoir"))?;
        copy_dir(&ckpt.join("store"), &dir.join("store"))?;
        Self::open(dir, topic, partition, schema, config)
    }

    /// Restore from `ckpt` if it is a complete, verifiable image —
    /// otherwise degrade to a fresh task that the caller rebuilds by
    /// replaying the topic from the beginning (§4.2's recovery flow with
    /// a crash-safety net: a checkpoint interrupted mid-copy, or damaged
    /// on disk afterwards, must never wedge the node or silently open as
    /// an empty store). This is also the elastic-membership handover
    /// entry point: a processor unit that gains a task in a rebalance
    /// restores the newest checkpoint-topic image through here and
    /// replays only the tail past the record's offset
    /// (`ProcessorUnit::acquire_task`), with the full replay below as
    /// the degraded arm.
    ///
    /// A checkpoint is accepted only if all of:
    ///
    /// 1. its store image carries the completeness marker
    ///    ([`railgun_store::checkpoint::is_complete`] — the empty
    ///    `wal.log` is written after every SSTable and the manifest);
    /// 2. the copied image opens ([`TaskProcessor::open`] succeeds);
    /// 3. the opened store passes a full integrity check
    ///    ([`Db::verify_integrity`] — every SSTable block decodes, keys
    ///    are strictly sorted, entry counts match).
    ///
    /// Any other outcome wipes the restore target, bumps
    /// `TaskConfig::checkpoint_fallbacks`, and returns a fresh processor
    /// with [`RestoreOutcome::FullReplay`].
    pub fn restore_or_replay(
        ckpt: &Path,
        dir: &Path,
        topic: &str,
        partition: u32,
        schema: Schema,
        config: TaskConfig,
    ) -> Result<(Self, RestoreOutcome)> {
        let fallbacks = config.checkpoint_fallbacks.clone();
        if railgun_store::checkpoint::is_complete(&RealFs, &ckpt.join("store")) {
            let restored = Self::restore_from_checkpoint(
                ckpt,
                dir,
                topic,
                partition,
                schema.clone(),
                config.clone(),
            );
            match restored {
                Ok(tp) if tp.db.verify_integrity().is_ok() => {
                    return Ok((tp, RestoreOutcome::FromCheckpoint));
                }
                // Marker present but the image does not open or verify
                // (bit rot, truncation after creation): fall through.
                _ => {}
            }
        }
        // Leave nothing of the failed restore behind — `open` would
        // otherwise recover the half-copied image as if it were real data.
        if dir.exists() {
            std::fs::remove_dir_all(dir)?;
        }
        fallbacks.incr();
        let tp = Self::open(dir, topic, partition, schema, config)?;
        Ok((tp, RestoreOutcome::FullReplay))
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> TaskStats {
        self.stats.snapshot()
    }

    /// Reservoir statistics (memory accounting for §5.2).
    pub fn reservoir_stats(&self) -> railgun_reservoir::ReservoirStats {
        self.reservoir.stats()
    }

    /// State-store statistics.
    pub fn store_stats(&self) -> railgun_store::DbStats {
        self.db.stats()
    }

    /// Number of plan leaves (state keys touched per event).
    pub fn leaf_count(&self) -> usize {
        self.plan.leaf_count()
    }

    /// Number of live reservoir cursors (the paper's "iterators", §5.2(b)).
    pub fn iterator_count(&self) -> usize {
        self.reservoir.stats().cursors
    }
}

/// Stable anonymous id for direct (non-cluster) registrations: an FxHash
/// of the query's textual form, with the high bit set so it can never
/// collide with front-end-assigned ids (front-end ids embed node ids,
/// which stay far below 2^31).
fn derived_query_id(query: &Query) -> QueryId {
    use std::hash::Hasher;
    let mut h = railgun_types::hash::FxHasher::default();
    match query.to_text() {
        Ok(text) => h.write(text.as_bytes()),
        Err(_) => h.write(format!("{query:?}").as_bytes()),
    }
    QueryId(h.finish() | (1 << 63))
}

fn copy_dir(from: &Path, to: &Path) -> Result<()> {
    std::fs::create_dir_all(to)?;
    if !from.exists() {
        return Ok(());
    }
    for entry in std::fs::read_dir(from)? {
        let entry = entry?;
        if entry.file_type()?.is_file() {
            std::fs::copy(entry.path(), to.join(entry.file_name()))?;
        }
    }
    Ok(())
}

/// Helper: a fresh unique data dir under the system temp dir (tests).
pub fn temp_task_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "railgun-task-{}-{tag}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parse_query;
    use railgun_types::{EventId, FieldType};

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("cardId", FieldType::Str),
            ("merchantId", FieldType::Str),
            ("amount", FieldType::Float),
        ])
        .unwrap()
    }

    fn proc(tag: &str) -> TaskProcessor {
        TaskProcessor::open(
            &temp_task_dir(tag),
            "payments--cardId",
            0,
            schema(),
            TaskConfig::default(),
        )
        .unwrap()
    }

    fn ev(id: u64, ts_ms: i64, card: &str, merchant: &str, amount: f64) -> Event {
        Event::new(
            EventId(id),
            Timestamp::from_millis(ts_ms),
            vec![
                Value::Str(card.into()),
                Value::Str(merchant.into()),
                Value::Float(amount),
            ],
        )
    }

    fn result_value(results: &[AggregationResult], name_prefix: &str) -> Value {
        results
            .iter()
            .find(|r| r.name.starts_with(name_prefix))
            .unwrap_or_else(|| panic!("no result named {name_prefix}*"))
            .value
            .clone()
    }

    #[test]
    fn q1_sum_and_count_per_card() {
        let mut tp = proc("q1");
        let q = parse_query(
            "SELECT sum(amount), count(*) FROM payments GROUP BY cardId OVER sliding 5 min",
        )
        .unwrap();
        tp.register_query(&q).unwrap();
        let (r, _) = tp.process_event(&ev(1, 1_000, "A", "m1", 10.0)).unwrap();
        assert_eq!(result_value(&r, "sum(amount)"), Value::Float(10.0));
        assert_eq!(result_value(&r, "count(*)"), Value::Int(1));
        let (r, _) = tp.process_event(&ev(2, 2_000, "A", "m2", 15.0)).unwrap();
        assert_eq!(result_value(&r, "sum(amount)"), Value::Float(25.0));
        assert_eq!(result_value(&r, "count(*)"), Value::Int(2));
        // Different card: independent state.
        let (r, _) = tp.process_event(&ev(3, 3_000, "B", "m1", 100.0)).unwrap();
        assert_eq!(result_value(&r, "sum(amount)"), Value::Float(100.0));
        assert_eq!(result_value(&r, "count(*)"), Value::Int(1));
    }

    #[test]
    fn sliding_window_expires_events() {
        let mut tp = proc("expiry");
        let q = parse_query(
            "SELECT count(*) FROM payments GROUP BY cardId OVER sliding 1 min",
        )
        .unwrap();
        tp.register_query(&q).unwrap();
        for (id, ts) in [(1, 0i64), (2, 10_000), (3, 50_000)] {
            tp.process_event(&ev(id, ts, "A", "m", 1.0)).unwrap();
        }
        // At t=75s the window lower bound is 15.001s: events at 0s and 10s
        // expired, events at 50s and 75s remain.
        let (r, _) = tp.process_event(&ev(4, 75_000, "A", "m", 1.0)).unwrap();
        assert_eq!(result_value(&r, "count(*)"), Value::Int(2));
        assert!(tp.stats().evictions >= 2);
    }

    #[test]
    fn figure_1_semantics_sliding_window_catches_all_five() {
        // The paper's Figure 1: events at minutes 1,2,3,4 and one "just
        // inside" the 5-min window. A real-time sliding window sees all 5.
        let mut tp = proc("fig1");
        let q = parse_query(
            "SELECT count(*) FROM payments GROUP BY cardId OVER sliding 5 min",
        )
        .unwrap();
        tp.register_query(&q).unwrap();
        let minutes = [60_000i64, 120_000, 180_000, 240_000];
        for (i, ts) in minutes.iter().enumerate() {
            tp.process_event(&ev(i as u64, *ts, "A", "m", 1.0)).unwrap();
        }
        // e5 arrives at 5:59.999 — within 5 minutes of e1 (1:00).
        let (r, _) = tp
            .process_event(&ev(9, 359_999, "A", "m", 1.0))
            .unwrap();
        assert_eq!(
            result_value(&r, "count(*)"),
            Value::Int(5),
            "real-time sliding window must include all 5 events"
        );
        // Two ms later e1 (ts=60000) has fallen out of the window, so the
        // count stays at 5 even though a new event arrived.
        let (r, _) = tp.process_event(&ev(10, 360_001, "A", "m", 1.0)).unwrap();
        assert_eq!(result_value(&r, "count(*)"), Value::Int(5));
    }

    #[test]
    fn shared_window_multiple_group_bys() {
        // Q1 + Q2 of Example 1 on one task.
        let mut tp = proc("example1");
        tp.register_query(
            &parse_query(
                "SELECT sum(amount), count(*) FROM payments GROUP BY cardId OVER sliding 5 min",
            )
            .unwrap(),
        )
        .unwrap();
        tp.register_query(
            &parse_query(
                "SELECT avg(amount) FROM payments GROUP BY merchantId OVER sliding 5 min",
            )
            .unwrap(),
        )
        .unwrap();
        tp.process_event(&ev(1, 1_000, "A", "m1", 10.0)).unwrap();
        let (r, _) = tp.process_event(&ev(2, 2_000, "B", "m1", 30.0)).unwrap();
        // Card B: sum=30, count=1. Merchant m1: avg=(10+30)/2=20.
        assert_eq!(result_value(&r, "sum(amount)"), Value::Float(30.0));
        assert_eq!(result_value(&r, "count(*)"), Value::Int(1));
        assert_eq!(result_value(&r, "avg(amount)"), Value::Float(20.0));
    }

    #[test]
    fn filter_applies_to_inserts_and_evictions() {
        let mut tp = proc("filter");
        let q = parse_query(
            "SELECT count(*) FROM payments WHERE amount > 50 GROUP BY cardId OVER sliding 1 min",
        )
        .unwrap();
        tp.register_query(&q).unwrap();
        tp.process_event(&ev(1, 0, "A", "m", 100.0)).unwrap(); // passes
        let (r, _) = tp.process_event(&ev(2, 1_000, "A", "m", 10.0)).unwrap(); // filtered
        assert_eq!(result_value(&r, "count(*)"), Value::Int(1));
        // After expiry of the passing event the count returns to 0.
        let (r, _) = tp.process_event(&ev(3, 61_001, "A", "m", 10.0)).unwrap();
        assert_eq!(result_value(&r, "count(*)"), Value::Int(0));
    }

    #[test]
    fn duplicates_do_not_double_count() {
        let mut tp = proc("dup");
        let q = parse_query(
            "SELECT count(*) FROM payments GROUP BY cardId OVER sliding 5 min",
        )
        .unwrap();
        tp.register_query(&q).unwrap();
        tp.process_event(&ev(7, 1_000, "A", "m", 1.0)).unwrap();
        let (r, dup) = tp.process_event(&ev(7, 1_000, "A", "m", 1.0)).unwrap();
        assert!(dup);
        assert_eq!(result_value(&r, "count(*)"), Value::Int(1));
        assert_eq!(tp.stats().duplicates, 1);
    }

    #[test]
    fn tumbling_window_resets_each_bucket() {
        let mut tp = proc("tumbling");
        let q = parse_query(
            "SELECT count(*) FROM payments GROUP BY cardId OVER tumbling 1 min",
        )
        .unwrap();
        tp.register_query(&q).unwrap();
        let (r, _) = tp.process_event(&ev(1, 10_000, "A", "m", 1.0)).unwrap();
        assert_eq!(result_value(&r, "count(*)"), Value::Int(1));
        let (r, _) = tp.process_event(&ev(2, 30_000, "A", "m", 1.0)).unwrap();
        assert_eq!(result_value(&r, "count(*)"), Value::Int(2));
        // Next minute bucket starts fresh.
        let (r, _) = tp.process_event(&ev(3, 70_000, "A", "m", 1.0)).unwrap();
        assert_eq!(result_value(&r, "count(*)"), Value::Int(1));
    }

    #[test]
    fn infinite_window_never_expires() {
        let mut tp = proc("infinite");
        let q = parse_query(
            "SELECT countDistinct(merchantId) FROM payments GROUP BY cardId OVER infinite",
        )
        .unwrap();
        tp.register_query(&q).unwrap();
        tp.process_event(&ev(1, 0, "A", "m1", 1.0)).unwrap();
        tp.process_event(&ev(2, 86_400_000, "A", "m2", 1.0)).unwrap(); // 1 day later
        let (r, _) = tp
            .process_event(&ev(3, 30 * 86_400_000, "A", "m1", 1.0))
            .unwrap();
        assert_eq!(result_value(&r, "countDistinct"), Value::Int(2));
        assert_eq!(tp.stats().evictions, 0);
    }

    #[test]
    fn delayed_window_lags_behind() {
        let mut tp = proc("delayed");
        let q = parse_query(
            "SELECT count(*) FROM payments GROUP BY cardId OVER sliding 1 min delayed by 1 min",
        )
        .unwrap();
        tp.register_query(&q).unwrap();
        // Event at t=0 enters the delayed window only when T_eval - 60s
        // passes it, i.e. for events after ~t=60s.
        let (r, _) = tp.process_event(&ev(1, 0, "A", "m", 1.0)).unwrap();
        assert_eq!(result_value(&r, "count(*)"), Value::Int(0), "own event not visible yet");
        let (r, _) = tp.process_event(&ev(2, 30_000, "A", "m", 1.0)).unwrap();
        assert_eq!(result_value(&r, "count(*)"), Value::Int(0));
        // At t=70s the delayed window covers [70s-60s-60s, 70s-60s) = [-50s, 10s):
        // contains the t=0 event only.
        let (r, _) = tp.process_event(&ev(3, 70_000, "A", "m", 1.0)).unwrap();
        assert_eq!(result_value(&r, "count(*)"), Value::Int(1));
    }

    #[test]
    fn backfill_new_metric_from_existing_events() {
        let mut tp = proc("backfill");
        let q1 = parse_query(
            "SELECT count(*) FROM payments GROUP BY cardId OVER sliding 5 min",
        )
        .unwrap();
        tp.register_query(&q1).unwrap();
        for i in 0..5 {
            tp.process_event(&ev(i, 1_000 + i as i64 * 100, "A", "m", 2.0))
                .unwrap();
        }
        // New metric registered later must see the stored events.
        let q2 = parse_query(
            "SELECT sum(amount) FROM payments GROUP BY cardId OVER sliding 10 min",
        )
        .unwrap();
        tp.register_query(&q2).unwrap();
        let (r, _) = tp.process_event(&ev(99, 2_000, "A", "m", 2.0)).unwrap();
        // 5 backfilled events + this one = 6 × 2.0.
        assert_eq!(result_value(&r, "sum(amount)"), Value::Float(12.0));
    }

    #[test]
    fn all_aggregations_together() {
        let mut tp = proc("allaggs");
        let q = parse_query(
            "SELECT count(amount), sum(amount), avg(amount), stdDev(amount), max(amount), \
             min(amount), last(amount), prev(amount), countDistinct(merchantId) \
             FROM payments GROUP BY cardId OVER sliding 5 min",
        )
        .unwrap();
        tp.register_query(&q).unwrap();
        tp.process_event(&ev(1, 1_000, "A", "m1", 10.0)).unwrap();
        tp.process_event(&ev(2, 2_000, "A", "m2", 30.0)).unwrap();
        let (r, _) = tp.process_event(&ev(3, 3_000, "A", "m1", 20.0)).unwrap();
        assert_eq!(result_value(&r, "count(amount)"), Value::Int(3));
        assert_eq!(result_value(&r, "sum(amount)"), Value::Float(60.0));
        assert_eq!(result_value(&r, "avg(amount)"), Value::Float(20.0));
        assert_eq!(result_value(&r, "max(amount)"), Value::Float(30.0));
        assert_eq!(result_value(&r, "min(amount)"), Value::Float(10.0));
        assert_eq!(result_value(&r, "last(amount)"), Value::Float(20.0));
        assert_eq!(result_value(&r, "prev(amount)"), Value::Float(30.0));
        assert_eq!(result_value(&r, "countDistinct"), Value::Int(2));
        let std = result_value(&r, "stdDev(amount)").as_f64().unwrap();
        assert!((std - 10.0).abs() < 1e-9, "sample stddev of 10,30,20 = 10");
    }

    #[test]
    fn checkpoint_and_restore() {
        let mut tp = proc("ckpt-src2");
        let q = parse_query(
            "SELECT sum(amount) FROM payments GROUP BY cardId OVER sliding 5 min",
        )
        .unwrap();
        tp.register_query(&q).unwrap();
        for i in 0..10 {
            tp.process_event(&ev(i, 1_000 * i as i64, "A", "m", 1.0))
                .unwrap();
        }
        let ckpt = temp_task_dir("ckpt-dir2");
        tp.checkpoint(&ckpt).unwrap();
        drop(tp);
        let restore_dir = temp_task_dir("ckpt-restore2");
        let mut tp2 = TaskProcessor::restore_from_checkpoint(
            &ckpt,
            &restore_dir,
            "payments--cardId",
            0,
            schema(),
            TaskConfig::default(),
        )
        .unwrap();
        tp2.register_query(&q).unwrap();
        // The restored processor continues with backfilled state from the
        // reservoir (events re-enter via the backfill head cursor).
        let (r, _) = tp2.process_event(&ev(100, 10_000, "A", "m", 1.0)).unwrap();
        let sum = result_value(&r, "sum(amount)").as_f64().unwrap();
        assert!(sum >= 10.0, "restored + replayed state, got {sum}");
    }

    #[test]
    fn stats_track_state_access_pattern() {
        // Paper §4.1.3: keys accessed per event == number of DAG leaves.
        let mut tp = proc("statskeys");
        tp.register_query(
            &parse_query(
                "SELECT sum(amount), count(*) FROM payments GROUP BY cardId OVER sliding 5 min",
            )
            .unwrap(),
        )
        .unwrap();
        tp.register_query(
            &parse_query(
                "SELECT avg(amount) FROM payments GROUP BY merchantId OVER sliding 5 min",
            )
            .unwrap(),
        )
        .unwrap();
        let before = tp.stats();
        tp.process_event(&ev(1, 1_000, "A", "m", 5.0)).unwrap();
        let after = tp.stats();
        // 3 leaves → 3 insert writes (no expiry yet).
        assert_eq!(after.state_writes - before.state_writes, 3);
    }

    #[test]
    fn unregister_tears_down_state_and_cursors() {
        let mut tp = proc("unregister");
        let q1 = parse_query(
            "SELECT sum(amount), count(*) FROM payments GROUP BY cardId OVER sliding 5 min",
        )
        .unwrap();
        let q2 = parse_query(
            "SELECT countDistinct(merchantId) FROM payments GROUP BY cardId OVER infinite",
        )
        .unwrap();
        let h1 = tp.register_query(&q1).unwrap();
        let h2 = tp.register_query(&q2).unwrap();
        let qid1 = h1[0].query;
        let qid2 = h2[0].query;
        assert_eq!(tp.query_ids(), {
            let mut ids = vec![qid1, qid2];
            ids.sort_unstable();
            ids
        });
        for i in 0..5 {
            tp.process_event(&ev(i, 1_000 * i as i64, "A", "m", 2.0)).unwrap();
        }
        let cursors_before = tp.iterator_count();
        assert_eq!(tp.leaf_count(), 3);

        // Tear q1 down: its sliding window (head+tail cursors) dies, its
        // two leaves' state is deleted, q2 keeps serving.
        assert!(tp.unregister_query(qid1).unwrap());
        assert_eq!(tp.leaf_count(), 1, "only countDistinct remains");
        assert!(
            tp.iterator_count() < cursors_before,
            "dead window must drop its cursors ({} -> {})",
            cursors_before,
            tp.iterator_count()
        );
        // Default-CF state of the dead leaves (prefix 0 and 1) is gone.
        assert!(tp
            .db
            .scan_prefix(Db::DEFAULT_CF, &leaf_prefix(0))
            .unwrap()
            .is_empty());
        assert!(tp
            .db
            .scan_prefix(Db::DEFAULT_CF, &leaf_prefix(1))
            .unwrap()
            .is_empty());

        // Replies no longer carry q1's aggregations.
        let (r, _) = tp.process_event(&ev(100, 6_000, "A", "m2", 3.0)).unwrap();
        assert!(r.iter().all(|a| a.query == qid2), "{r:?}");
        assert_eq!(result_value(&r, "countDistinct"), Value::Int(2));

        // Unregistering twice is a no-op.
        assert!(!tp.unregister_query(qid1).unwrap());
    }

    #[test]
    fn unregister_count_distinct_clears_aux_state() {
        let mut tp = proc("unregister-aux");
        let q = parse_query(
            "SELECT countDistinct(merchantId) FROM payments GROUP BY cardId OVER infinite",
        )
        .unwrap();
        let h = tp.register_query(&q).unwrap();
        tp.process_event(&ev(1, 0, "A", "m1", 1.0)).unwrap();
        tp.process_event(&ev(2, 1_000, "A", "m2", 1.0)).unwrap();
        assert!(!tp.db.scan_prefix(tp.aux_cf, &[]).unwrap().is_empty());
        tp.unregister_query(h[0].query).unwrap();
        assert!(
            tp.db.scan_prefix(tp.aux_cf, &[]).unwrap().is_empty(),
            "aux counters torn down with the leaf"
        );
        // Reclaim went through the compaction filters, not point deletes.
        assert!(
            tp.store_stats().filter_dropped > 0,
            "unregister must reclaim via filtered compaction"
        );
        assert!(
            tp.db.get(tp.meta_cf, DEAD_PREFIXES_KEY).unwrap().is_none(),
            "reclaim marker cleared once the compactions committed"
        );
    }

    #[test]
    fn interrupted_unregister_reclaim_resumes_at_open() {
        let dir = temp_task_dir("reclaim-resume");
        {
            let mut tp = TaskProcessor::open(
                &dir,
                "payments--cardId",
                0,
                schema(),
                TaskConfig::default(),
            )
            .unwrap();
            let q = parse_query(
                "SELECT countDistinct(merchantId) FROM payments GROUP BY cardId OVER infinite",
            )
            .unwrap();
            tp.register_query(&q).unwrap();
            for i in 0..6 {
                tp.process_event(&ev(i, 1_000 * i as i64, "A", &format!("m{i}"), 1.0))
                    .unwrap();
            }
            assert!(!tp.db.scan_prefix(tp.aux_cf, &[]).unwrap().is_empty());
            // Crash exactly between an unregistration persisting its
            // marker and running the reclaim compactions: write the
            // marker by hand and drop the task without reclaiming.
            tp.db
                .put(tp.meta_cf, DEAD_PREFIXES_KEY, &leaf_prefix(0))
                .unwrap();
        }
        let tp = TaskProcessor::open(
            &dir,
            "payments--cardId",
            0,
            schema(),
            TaskConfig::default(),
        )
        .unwrap();
        // Open must finish the reclaim before any registration can reuse
        // leaf id 0 (ids restart per incarnation).
        assert!(
            tp.db
                .scan_prefix(Db::DEFAULT_CF, &leaf_prefix(0))
                .unwrap()
                .is_empty(),
            "dead leaf state reclaimed at open"
        );
        assert!(
            tp.db.scan_prefix(tp.aux_cf, &[]).unwrap().is_empty(),
            "dead aux state reclaimed at open"
        );
        assert!(!tp.horizon.has_dead());
        assert!(
            tp.db.get(tp.meta_cf, DEAD_PREFIXES_KEY).unwrap().is_none(),
            "marker cleared after the resumed reclaim"
        );
    }

    #[test]
    fn elastic_handover_matches_lockstep_twin_under_expiry() {
        // The elastic-membership handover path (checkpoint →
        // restore_or_replay → reattach_query_as) on a task whose store
        // has been through watermark expiry *and* dead-leaf filtering:
        // the restored processor's per-event results must stay
        // byte-identical to a lockstep twin that only ever ran the
        // surviving query.
        let cfg = || TaskConfig {
            truncate_every: 1, // retention (and the expiry watermark) advance every event
            retention_margin: TimeDelta::from_secs(5),
            ..TaskConfig::default()
        };
        let qt = parse_query(
            "SELECT sum(amount), count(*) FROM payments GROUP BY cardId OVER tumbling 1 min",
        )
        .unwrap();
        let qx = parse_query(
            "SELECT countDistinct(merchantId) FROM payments GROUP BY cardId OVER sliding 2 min",
        )
        .unwrap();
        let (tid, xid) = (QueryId(7), QueryId(8));
        let mut primary = TaskProcessor::open(
            &temp_task_dir("elastic-expiry-primary"),
            "payments--cardId",
            0,
            schema(),
            cfg(),
        )
        .unwrap();
        primary.register_query_as(tid, &qt).unwrap();
        primary.register_query_as(xid, &qx).unwrap();
        let mut twin = TaskProcessor::open(
            &temp_task_dir("elastic-expiry-twin"),
            "payments--cardId",
            0,
            schema(),
            cfg(),
        )
        .unwrap();
        twin.register_query_as(tid, &qt).unwrap();

        let mk = |i: u64| {
            ev(
                i,
                (i as i64) * 10_000, // one event per 10 s → many 1-min buckets
                "A",
                &format!("m{}", i % 5),
                (i % 7) as f64,
            )
        };
        let only_t = |r: Vec<AggregationResult>| -> Vec<AggregationResult> {
            r.into_iter().filter(|a| a.query == tid).collect()
        };
        for i in 0..30 {
            let e = mk(i);
            let rp = only_t(primary.process_event(&e).unwrap().0);
            let rt = only_t(twin.process_event(&e).unwrap().0);
            assert_eq!(rp, rt, "pre-unregister divergence at event {i}");
        }
        // Tear down the side query: its leaves die and are reclaimed by
        // the compaction filters (eager flush + compact).
        assert!(primary.unregister_query(xid).unwrap());
        assert!(
            primary.store_stats().filter_dropped > 0,
            "dead-leaf reclaim must go through the filter"
        );
        for i in 30..60 {
            let e = mk(i);
            let rp = only_t(primary.process_event(&e).unwrap().0);
            let rt = only_t(twin.process_event(&e).unwrap().0);
            assert_eq!(rp, rt, "post-unregister divergence at event {i}");
        }
        // Force a maintenance cycle so buckets behind the watermark are
        // physically dropped, then prove live results are unaffected.
        let dropped_before = primary.store_stats().filter_dropped;
        primary.db.flush().unwrap();
        primary.db.compact_cf(Db::DEFAULT_CF).unwrap();
        assert!(
            primary.store_stats().filter_dropped > dropped_before,
            "expired tumbling buckets must fall out of the compaction"
        );

        // Handover: checkpoint, restore into a fresh dir, reattach.
        let ckpt = temp_task_dir("elastic-expiry-ckpt");
        primary.checkpoint(&ckpt).unwrap();
        drop(primary);
        let (mut restored, outcome) = TaskProcessor::restore_or_replay(
            &ckpt,
            &temp_task_dir("elastic-expiry-restore"),
            "payments--cardId",
            0,
            schema(),
            cfg(),
        )
        .unwrap();
        assert_eq!(outcome, RestoreOutcome::FromCheckpoint);
        restored.reattach_query_as(tid, &qt).unwrap();
        for i in 60..90 {
            let e = mk(i);
            let rr = only_t(restored.process_event(&e).unwrap().0);
            let rt = only_t(twin.process_event(&e).unwrap().0);
            assert_eq!(rr, rt, "post-handover divergence at event {i}");
        }
    }

    #[test]
    fn reregistration_after_unregister_starts_fresh_with_backfill() {
        let mut tp = proc("rereg");
        let q = parse_query(
            "SELECT count(*) FROM payments GROUP BY cardId OVER sliding 5 min",
        )
        .unwrap();
        let h = tp.register_query(&q).unwrap();
        for i in 0..4 {
            tp.process_event(&ev(i, 1_000 + 100 * i as i64, "A", "m", 1.0))
                .unwrap();
        }
        tp.unregister_query(h[0].query).unwrap();
        // Re-register (the derived id is the same — that's fine, the old
        // plan nodes are dead): a fresh leaf backfills from the reservoir.
        tp.register_query(&q).unwrap();
        let (r, _) = tp.process_event(&ev(99, 2_000, "A", "m", 1.0)).unwrap();
        assert_eq!(
            result_value(&r, "count(*)"),
            Value::Int(5),
            "4 backfilled + 1 new"
        );
    }

    #[test]
    fn new_leaf_on_live_shared_window_backfills() {
        // q1 keeps the 5-min window alive; q2 is unregistered and then
        // re-registered onto the *same live* window — its fresh leaf must
        // backfill the window's current content to stay exact.
        let mut tp = proc("shared-backfill");
        let q1 = parse_query(
            "SELECT count(*) FROM payments GROUP BY cardId OVER sliding 5 min",
        )
        .unwrap();
        let q2 = parse_query(
            "SELECT sum(amount) FROM payments GROUP BY cardId OVER sliding 5 min",
        )
        .unwrap();
        tp.register_query(&q1).unwrap();
        let h2 = tp.register_query(&q2).unwrap();
        for i in 0..4 {
            tp.process_event(&ev(i, 1_000 + 100 * i as i64, "A", "m", 2.5))
                .unwrap();
        }
        tp.unregister_query(h2[0].query).unwrap();
        tp.register_query(&q2).unwrap();
        let (r, _) = tp.process_event(&ev(99, 2_000, "A", "m", 2.5)).unwrap();
        assert_eq!(
            result_value(&r, "sum(amount)"),
            Value::Float(12.5),
            "4 backfilled in-window events + 1 new"
        );
        assert_eq!(result_value(&r, "count(*)"), Value::Int(5), "q1 untouched");

        // Same mechanism for a genuinely new aggregation added late to a
        // live window (not just re-registration).
        let q3 = parse_query(
            "SELECT max(amount) FROM payments GROUP BY cardId OVER sliding 5 min",
        )
        .unwrap();
        tp.register_query(&q3).unwrap();
        let (r, _) = tp.process_event(&ev(100, 3_000, "A", "m", 1.0)).unwrap();
        assert_eq!(result_value(&r, "max(amount)"), Value::Float(2.5));
    }

    #[test]
    fn results_are_keyed_by_query_and_index() {
        let mut tp = proc("keyed");
        let q = parse_query(
            "SELECT sum(amount), count(*) FROM payments GROUP BY cardId OVER sliding 5 min",
        )
        .unwrap();
        let handles = tp.register_query(&q).unwrap();
        let (r, _) = tp.process_event(&ev(1, 1_000, "A", "m", 7.5)).unwrap();
        let qid = handles[0].query;
        assert_eq!(
            crate::api::find_keyed(&r, qid, 0).unwrap().value,
            Value::Float(7.5)
        );
        assert_eq!(
            crate::api::find_keyed(&r, qid, 1).unwrap().value,
            Value::Int(1)
        );
        assert!(crate::api::find_keyed(&r, qid, 2).is_none());
    }

    #[test]
    fn rejects_schema_violations() {
        let mut tp = proc("badschema");
        let bad = Event::new(
            EventId(1),
            Timestamp::from_millis(0),
            vec![Value::Int(1)], // wrong arity
        );
        assert!(tp.process_event(&bad).is_err());
    }
}
