//! Watermark-driven compaction filters for task state.
//!
//! Each task processor shares one [`StateHorizon`] between its event
//! loop and the compaction filters installed on its store's column
//! families (the `OldestSlot` pattern from the Solana blockstore): the
//! loop advances two monotonic horizons as the computation makes
//! progress, and compactions drop every entry that fell behind — expired
//! tumbling-window buckets and the keys of unregistered queries vanish
//! during merges the store was doing anyway, instead of costing a point
//! delete (WAL frame + memtable entry + tombstone) each.
//!
//! Two horizons, two filters:
//!
//! * **bucket expiry** — `expire_before_ms`, advanced by the task's
//!   retention pass in lockstep with the reservoir truncation bound. A
//!   state key whose tumbling-bucket timestamp lies strictly below it
//!   can never be read again (results are only collected for current
//!   buckets), so [`StateKeyFilter`] discards it.
//! * **dead leaves** — the 4-byte leaf prefixes of unregistered
//!   aggregators. [`StateKeyFilter`] matches them directly;
//!   [`AuxKeyFilter`] decodes the state key embedded in aux/sketch keys
//!   and applies the same verdicts.
//!
//! Both honour the [`CompactionFilter`] contract (see
//! `railgun_store::options`): verdicts depend only on the key bytes and
//! the current horizon values, `expire_before_ms` only advances, and a
//! dead prefix is only *cleared* after the state it covers has been
//! reclaimed (flush + compaction of every filtered CF) — within an
//! incarnation ids are never reused, and across restarts pending
//! prefixes are persisted and reclaimed before the plan registers new
//! leaves. Unparseable keys are kept: the filter must never guess.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use railgun_store::{CompactionFilter, FilterDecision};
use railgun_types::encode::{get_ivarint, get_uvarint};

/// Shared expiry state between a task processor and its store's
/// compaction filters.
#[derive(Debug)]
pub struct StateHorizon {
    /// Tumbling buckets strictly below this (ms since epoch) are dead.
    /// Starts at `i64::MIN` — nothing expires until the first advance.
    expire_before_ms: AtomicI64,
    /// Sorted 4-byte leaf prefixes of unregistered aggregators.
    dead: Mutex<Vec<[u8; 4]>>,
}

impl StateHorizon {
    pub fn new() -> Arc<Self> {
        Arc::new(StateHorizon {
            expire_before_ms: AtomicI64::new(i64::MIN),
            dead: Mutex::new(Vec::new()),
        })
    }

    /// Advance the bucket-expiry watermark (monotonic: a lower value is
    /// a no-op).
    pub fn advance_bucket_expiry(&self, before_ms: i64) {
        self.expire_before_ms.fetch_max(before_ms, Ordering::Relaxed);
    }

    /// Current bucket-expiry watermark in ms (`i64::MIN` = never).
    pub fn bucket_expire_before_ms(&self) -> i64 {
        self.expire_before_ms.load(Ordering::Relaxed)
    }

    /// Mark a leaf prefix dead — its keys become compaction fodder.
    pub fn add_dead_prefix(&self, prefix: [u8; 4]) {
        let mut dead = self.dead.lock();
        if let Err(ix) = dead.binary_search(&prefix) {
            dead.insert(ix, prefix);
        }
    }

    /// Currently pending dead prefixes.
    pub fn dead_prefixes(&self) -> Vec<[u8; 4]> {
        self.dead.lock().clone()
    }

    /// Whether any dead prefix is pending reclamation.
    pub fn has_dead(&self) -> bool {
        !self.dead.lock().is_empty()
    }

    /// Forget all dead prefixes — call only after the state they cover
    /// has been reclaimed (flush + compaction of every filtered CF).
    pub fn clear_dead_prefixes(&self) {
        self.dead.lock().clear();
    }

    fn is_dead(&self, prefix: &[u8]) -> bool {
        let dead = self.dead.lock();
        !dead.is_empty() && dead.binary_search_by(|d| d.as_slice().cmp(prefix)).is_ok()
    }

    /// Verdict for one state key (see `crate::keys::state_key` for the
    /// layout: 4-byte leaf prefix, bucket tag, entity values).
    fn state_key_verdict(&self, key: &[u8]) -> FilterDecision {
        if key.len() < 5 {
            return FilterDecision::Keep;
        }
        if self.is_dead(&key[..4]) {
            return FilterDecision::Discard;
        }
        if key[4] == 1 {
            let mut cur = &key[5..];
            if let Ok(bucket_ms) = get_ivarint(&mut cur) {
                if bucket_ms < self.expire_before_ms.load(Ordering::Relaxed) {
                    return FilterDecision::Discard;
                }
            }
        }
        FilterDecision::Keep
    }
}

/// Compaction filter for the default (aggregation-state) CF: keys are
/// raw state keys.
#[derive(Debug)]
pub struct StateKeyFilter(pub Arc<StateHorizon>);

impl CompactionFilter for StateKeyFilter {
    fn name(&self) -> &str {
        "state-horizon"
    }
    fn filter(&self, key: &[u8], _value: &[u8]) -> FilterDecision {
        self.0.state_key_verdict(key)
    }
}

/// Compaction filter for the aux/sketch CF: keys embed a
/// uvarint-length-prefixed state key (see `crate::agg`), which gets the
/// same verdict as in the default CF.
#[derive(Debug)]
pub struct AuxKeyFilter(pub Arc<StateHorizon>);

impl CompactionFilter for AuxKeyFilter {
    fn name(&self) -> &str {
        "aux-horizon"
    }
    fn filter(&self, key: &[u8], _value: &[u8]) -> FilterDecision {
        let mut cur = key;
        let Ok(len) = get_uvarint(&mut cur) else {
            return FilterDecision::Keep;
        };
        let len = len as usize;
        if cur.len() < len {
            return FilterDecision::Keep;
        }
        self.0.state_key_verdict(&cur[..len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::blob_key_for_tests;
    use crate::keys::state_key;
    use railgun_types::{Timestamp, Value};

    fn entity() -> Vec<Value> {
        vec![Value::Str("host-1".into())]
    }

    #[test]
    fn bucket_expiry_is_monotonic_and_selective() {
        let h = StateHorizon::new();
        let f = StateKeyFilter(Arc::clone(&h));
        let old = state_key(3, Some(Timestamp::from_millis(1_000)), &entity());
        let new = state_key(3, Some(Timestamp::from_millis(5_000)), &entity());
        let unbucketed = state_key(3, None, &entity());
        assert_eq!(f.filter(&old, b""), FilterDecision::Keep);
        h.advance_bucket_expiry(2_000);
        assert_eq!(f.filter(&old, b""), FilterDecision::Discard);
        assert_eq!(f.filter(&new, b""), FilterDecision::Keep);
        assert_eq!(f.filter(&unbucketed, b""), FilterDecision::Keep);
        // Going backwards is a no-op.
        h.advance_bucket_expiry(500);
        assert_eq!(h.bucket_expire_before_ms(), 2_000);
        assert_eq!(f.filter(&old, b""), FilterDecision::Discard);
    }

    #[test]
    fn dead_prefixes_kill_state_and_aux_keys() {
        let h = StateHorizon::new();
        let state = StateKeyFilter(Arc::clone(&h));
        let aux = AuxKeyFilter(Arc::clone(&h));
        let dead_key = state_key(7, None, &entity());
        let live_key = state_key(8, None, &entity());
        let dead_aux = blob_key_for_tests(&dead_key);
        let live_aux = blob_key_for_tests(&live_key);
        assert_eq!(state.filter(&dead_key, b""), FilterDecision::Keep);
        h.add_dead_prefix(crate::keys::leaf_prefix(7));
        assert_eq!(state.filter(&dead_key, b""), FilterDecision::Discard);
        assert_eq!(state.filter(&live_key, b""), FilterDecision::Keep);
        assert_eq!(aux.filter(&dead_aux, b""), FilterDecision::Discard);
        assert_eq!(aux.filter(&live_aux, b""), FilterDecision::Keep);
        assert!(h.has_dead());
        h.clear_dead_prefixes();
        assert!(!h.has_dead());
        assert_eq!(state.filter(&dead_key, b""), FilterDecision::Keep);
    }

    #[test]
    fn malformed_keys_are_kept() {
        let h = StateHorizon::new();
        h.advance_bucket_expiry(i64::MAX);
        h.add_dead_prefix([0, 0, 0, 1]);
        let state = StateKeyFilter(Arc::clone(&h));
        let aux = AuxKeyFilter(Arc::clone(&h));
        assert_eq!(state.filter(b"", b""), FilterDecision::Keep);
        assert_eq!(state.filter(&[0, 0], b""), FilterDecision::Keep);
        // Aux key whose declared embedded length exceeds the bytes.
        assert_eq!(aux.filter(&[200, 200, 1], b""), FilterDecision::Keep);
    }
}
