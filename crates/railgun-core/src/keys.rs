//! State-store key encoding.
//!
//! Each key identifies "a particular metric entity in a plan" (§4.1.3):
//! the plan leaf (aggregator), an optional tumbling-window bucket, and the
//! group-by entity values. Keys are prefix-ordered by leaf so per-leaf
//! scans (diagnostics, cleanup) are range scans.

use railgun_types::encode::{get_ivarint, get_uvarint, get_value, put_ivarint, put_uvarint, put_value};
use railgun_types::{RailgunError, Result, Timestamp, Value};

/// Encode a state key.
///
/// * `leaf` — plan leaf id (big-endian for prefix ordering);
/// * `bucket` — tumbling-window start (aligned), when applicable;
/// * `entity` — group-by values in group-field order.
pub fn state_key(leaf: u32, bucket: Option<Timestamp>, entity: &[Value]) -> Vec<u8> {
    let mut key = Vec::with_capacity(16 + entity.len() * 12);
    key.extend_from_slice(&leaf.to_be_bytes());
    match bucket {
        Some(b) => {
            key.push(1);
            put_ivarint(&mut key, b.as_millis());
        }
        None => key.push(0),
    }
    put_uvarint(&mut key, entity.len() as u64);
    for v in entity {
        put_value(&mut key, v);
    }
    key
}

/// The 4-byte prefix shared by every key of a leaf.
pub fn leaf_prefix(leaf: u32) -> [u8; 4] {
    leaf.to_be_bytes()
}

/// Decode a state key back into its parts (diagnostics/tests).
pub fn decode_state_key(mut key: &[u8]) -> Result<(u32, Option<Timestamp>, Vec<Value>)> {
    use bytes::Buf;
    if key.len() < 5 {
        return Err(RailgunError::Corruption("state key too short".into()));
    }
    let leaf = u32::from_be_bytes(key[..4].try_into().expect("4b"));
    key.advance(4);
    let bucket = match key.get_u8() {
        0 => None,
        1 => Some(Timestamp::from_millis(get_ivarint(&mut key)?)),
        other => {
            return Err(RailgunError::Corruption(format!(
                "bad bucket tag {other}"
            )))
        }
    };
    let n = get_uvarint(&mut key)? as usize;
    let mut entity = Vec::with_capacity(n);
    for _ in 0..n {
        entity.push(get_value(&mut key)?);
    }
    Ok((leaf, bucket, entity))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let entity = vec![Value::Str("card-1".into()), Value::Int(7)];
        let key = state_key(42, Some(Timestamp::from_millis(60_000)), &entity);
        let (leaf, bucket, ent) = decode_state_key(&key).unwrap();
        assert_eq!(leaf, 42);
        assert_eq!(bucket, Some(Timestamp::from_millis(60_000)));
        assert_eq!(ent, entity);
    }

    #[test]
    fn no_bucket_roundtrip() {
        let key = state_key(1, None, &[Value::Str("m".into())]);
        let (leaf, bucket, ent) = decode_state_key(&key).unwrap();
        assert_eq!(leaf, 1);
        assert_eq!(bucket, None);
        assert_eq!(ent, vec![Value::Str("m".into())]);
    }

    #[test]
    fn leaf_prefix_orders_keys() {
        let k1 = state_key(1, None, &[Value::Int(999)]);
        let k2 = state_key(2, None, &[Value::Int(0)]);
        assert!(k1 < k2, "leaf id dominates ordering");
        assert!(k1.starts_with(&leaf_prefix(1)));
    }

    #[test]
    fn distinct_entities_distinct_keys() {
        let a = state_key(1, None, &[Value::Str("a".into())]);
        let b = state_key(1, None, &[Value::Str("b".into())]);
        let ab = state_key(1, None, &[Value::Str("a".into()), Value::Str("b".into())]);
        assert_ne!(a, b);
        assert_ne!(a, ab);
    }

    #[test]
    fn buckets_separate_states() {
        let e = [Value::Str("c".into())];
        let b1 = state_key(1, Some(Timestamp::from_millis(0)), &e);
        let b2 = state_key(1, Some(Timestamp::from_millis(60_000)), &e);
        assert_ne!(b1, b2);
    }
}
