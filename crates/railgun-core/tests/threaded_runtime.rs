//! Threaded-runtime integration tests: the multi-threaded execution mode
//! must produce **byte-identical aggregation results** to the
//! deterministic single-threaded pump harness on the same event
//! sequences, survive concurrent clients with many in-flight requests,
//! and start/stop/restart idempotently (DESIGN.md § "Execution modes").
//!
//! The cross-check leans on the engine's per-entity determinism: every
//! reply's aggregations depend only on that entity's event prefix (GROUP
//! BY contains the partitioner, and entity affinity keeps one entity on
//! one partition, §4), so per-entity reply sequences must match exactly
//! across execution modes and interleavings.

use std::collections::BTreeMap;

use railgun_core::{AggregationResult, Cluster, ClusterConfig};
use railgun_messaging::BusClock;
use railgun_types::{FieldType, RailgunError, Schema, Timestamp, Value};

fn payments_schema() -> Schema {
    Schema::from_pairs(&[
        ("cardId", FieldType::Str),
        ("merchantId", FieldType::Str),
        ("amount", FieldType::Float),
    ])
    .unwrap()
}

fn fresh_config(tag: &str, units: u32, partitions: u32) -> ClusterConfig {
    let mut cfg = ClusterConfig {
        nodes: 1,
        units_per_node: units,
        partitions,
        ..ClusterConfig::default()
    };
    cfg.data_root = std::env::temp_dir().join(format!(
        "railgun-threaded-{}-{tag}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&cfg.data_root).ok();
    cfg
}

fn boot(cfg: ClusterConfig) -> Cluster {
    let mut cluster = Cluster::new(cfg).unwrap();
    cluster
        .create_stream("payments", payments_schema(), &["cardId"])
        .unwrap();
    cluster
        .register_query(
            "SELECT sum(amount), count(*) FROM payments GROUP BY cardId OVER sliding 5 min",
        )
        .unwrap();
    cluster
        .register_query(
            "SELECT countDistinct(merchantId) FROM payments GROUP BY cardId OVER infinite",
        )
        .unwrap();
    cluster
}

/// Deterministic event for (entity, seq): same inputs in both runs.
fn event_values(entity: &str, seq: u64) -> (Timestamp, Vec<Value>) {
    let ts = Timestamp::from_millis(seq as i64 * 1_000 + 17);
    let values = vec![
        Value::from(entity),
        Value::from(format!("m-{}", seq % 3)),
        Value::from(1.0 + seq as f64),
    ];
    (ts, values)
}

/// N client threads × M in-flight requests against a 4-unit threaded
/// cluster; per-entity reply sequences are then cross-checked against the
/// single-threaded pump harness processing the same event sequence.
#[test]
fn stress_threaded_matches_pump_harness() {
    const THREADS: usize = 4;
    const ENTITIES_PER_THREAD: usize = 3;
    const EVENTS_PER_ENTITY: u64 = 20;
    const IN_FLIGHT: usize = 8;

    // --- Threaded run: concurrent clients, pipelined in-flight windows ---
    let mut cluster = boot(fresh_config("stress-mt", 4, 4));
    cluster.start().unwrap();
    assert!(cluster.is_running());

    let mut clients = Vec::new();
    for _ in 0..THREADS {
        clients.push(cluster.client().unwrap());
    }
    let threaded: BTreeMap<String, Vec<Vec<AggregationResult>>> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for (t, mut client) in clients.into_iter().enumerate() {
            handles.push(s.spawn(move || {
                let entities: Vec<String> = (0..ENTITIES_PER_THREAD)
                    .map(|e| format!("card-{t}-{e}"))
                    .collect();
                let mut results: BTreeMap<String, Vec<(u64, Vec<AggregationResult>)>> =
                    entities.iter().map(|e| (e.clone(), Vec::new())).collect();
                // (request_id, entity, seq) in submission order; events of
                // one entity are sent in seq order, so per-entity replies
                // are a deterministic function of the prefix.
                let mut window: Vec<(u64, String, u64)> = Vec::new();
                for seq in 0..EVENTS_PER_ENTITY {
                    for entity in &entities {
                        let (ts, values) = event_values(entity, seq);
                        let id = client.send_async("payments", ts, values).unwrap();
                        window.push((id, entity.clone(), seq));
                        if window.len() >= IN_FLIGHT {
                            let (id, entity, seq) = window.remove(0);
                            let out = client.collect(id).unwrap();
                            assert!(!out.duplicate);
                            results.get_mut(&entity).unwrap()
                                .push((seq, out.aggregations));
                        }
                    }
                }
                for (id, entity, seq) in window {
                    let out = client.collect(id).unwrap();
                    results.get_mut(&entity).unwrap().push((seq, out.aggregations));
                }
                // Replies were collected in submission order per entity;
                // double-check and strip the seq tags.
                results
                    .into_iter()
                    .map(|(entity, mut seqs)| {
                        seqs.sort_by_key(|(seq, _)| *seq);
                        let ordered: Vec<Vec<AggregationResult>> =
                            seqs.into_iter().map(|(_, aggs)| aggs).collect();
                        (entity, ordered)
                    })
                    .collect::<BTreeMap<_, _>>()
            }));
        }
        let mut merged = BTreeMap::new();
        for h in handles {
            merged.extend(h.join().expect("client thread"));
        }
        merged
    });
    cluster.stop().unwrap();
    assert!(!cluster.is_running());
    assert_eq!(threaded.len(), THREADS * ENTITIES_PER_THREAD);

    // --- Pump run: same event sequence, single-threaded harness ---------
    let mut pump_cluster = boot(fresh_config("stress-pump", 4, 4));
    let mut pump: BTreeMap<String, Vec<Vec<AggregationResult>>> = BTreeMap::new();
    for t in 0..THREADS {
        for e in 0..ENTITIES_PER_THREAD {
            let entity = format!("card-{t}-{e}");
            for seq in 0..EVENTS_PER_ENTITY {
                let (ts, values) = event_values(&entity, seq);
                let out = pump_cluster.send("payments", ts, values).unwrap();
                pump.entry(entity.clone()).or_default().push(out.aggregations);
            }
        }
    }

    // --- Cross-check: byte-identical per-entity reply sequences ---------
    assert_eq!(
        threaded, pump,
        "threaded and pump harness disagree on aggregation results"
    );
}

#[test]
fn start_stop_restart_is_idempotent_and_keeps_state() {
    let mut cluster = boot(fresh_config("restart", 2, 2));

    // Pump mode first: establish state deterministically.
    let (ts, values) = event_values("card-X", 0);
    let r = cluster.send("payments", ts, values).unwrap();
    let count = |aggs: &[AggregationResult]| {
        aggs.iter()
            .find(|a| a.name.starts_with("count(*)"))
            .expect("count agg")
            .value
            .clone()
    };
    assert_eq!(count(&r.aggregations), Value::Int(1));

    // start twice (idempotent), send threaded, stop twice (idempotent).
    cluster.start().unwrap();
    cluster.start().unwrap();
    assert!(cluster.is_running());
    let (ts, values) = event_values("card-X", 1);
    let r = cluster.send("payments", ts, values).unwrap();
    assert_eq!(count(&r.aggregations), Value::Int(2), "state survived start");
    cluster.stop().unwrap();
    cluster.stop().unwrap();
    assert!(!cluster.is_running());

    // Back in pump mode: the same units continue with their state.
    let (ts, values) = event_values("card-X", 2);
    let r = cluster.send("payments", ts, values).unwrap();
    assert_eq!(count(&r.aggregations), Value::Int(3), "state survived stop");

    // Restart once more and keep counting.
    cluster.start().unwrap();
    let (ts, values) = event_values("card-X", 3);
    let r = cluster.send("payments", ts, values).unwrap();
    assert_eq!(count(&r.aggregations), Value::Int(4), "state survived restart");
    cluster.stop().unwrap();
}

#[test]
fn backpressure_bounds_in_flight_requests() {
    let mut cfg = fresh_config("backpressure", 1, 1);
    cfg.max_in_flight = 4;
    let mut cluster = boot(cfg);
    // Don't pump: requests stay in flight until the cap trips.
    let mut sent = 0u64;
    let err = loop {
        let (ts, values) = event_values("card-B", sent);
        match cluster.send_async("payments", ts, values) {
            Ok(_) => sent += 1,
            Err(e) => break e,
        }
        assert!(sent <= 4, "cap never tripped");
    };
    assert_eq!(sent, 4);
    assert!(
        matches!(err, RailgunError::Backpressure(_)),
        "expected backpressure, got {err:?}"
    );
}

#[test]
fn tickets_survive_node_removal() {
    // Tickets address nodes by stable id, not Vec index: removing another
    // node must not redirect an outstanding ticket to the wrong front-end.
    let mut cfg = fresh_config("ticketid", 1, 2);
    cfg.nodes = 2;
    let mut cluster = boot(cfg);
    // Warm the pipeline so both nodes know the stream.
    let (ts, values) = event_values("card-T", 0);
    cluster.send("payments", ts, values).unwrap();
    // Outstanding request on node index 1 (id 1), then node 0 leaves.
    let (ts, values) = event_values("card-T", 1);
    let ticket = cluster.send_async_via(1, "payments", ts, values).unwrap();
    assert_eq!(ticket.node, 1, "ticket carries the node id");
    cluster.decommission_node(0).unwrap();
    // Node id 1 now lives at index 0; the ticket must still resolve to it.
    let out = cluster.collect(ticket).unwrap();
    assert!(!out.aggregations.is_empty());
}

#[test]
fn cancel_and_collection_free_backpressure_slots() {
    let mut cfg = fresh_config("cancel", 1, 1);
    cfg.max_in_flight = 2;
    let mut cluster = boot(cfg);
    let send = |cluster: &mut Cluster, seq: u64| {
        let (ts, values) = event_values("card-C", seq);
        cluster.send_async("payments", ts, values)
    };
    let t1 = send(&mut cluster, 0).unwrap();
    let t2 = send(&mut cluster, 1).unwrap();
    assert!(matches!(
        send(&mut cluster, 2),
        Err(RailgunError::Backpressure(_))
    ));
    // cancel() frees an in-flight slot even though no reply was taken.
    assert!(cluster.cancel(t1));
    let t3 = send(&mut cluster, 2).unwrap();
    // Completed-but-unclaimed responses still count against the cap:
    // settle (pumps without claiming) until both replies are in, then the
    // next send must push back.
    for _ in 0..4 {
        cluster.settle().unwrap();
    }
    assert!(matches!(
        send(&mut cluster, 3),
        Err(RailgunError::Backpressure(_))
    ));
    // Claiming a response frees its slot again.
    assert!(cluster.try_collect(t2).unwrap().is_some());
    assert!(send(&mut cluster, 3).is_ok());
    // Cleanup path: the remaining response is claimable too.
    assert!(cluster.try_collect(t3).unwrap().is_some());
}

#[test]
fn threaded_cluster_with_auto_clock_serves_requests() {
    let mut cfg = fresh_config("autoclock", 2, 2);
    cfg.clock = BusClock::Auto;
    cfg.session_timeout_ms = 200;
    let mut cluster = boot(cfg);
    cluster.start().unwrap();
    let mut client = cluster.client().unwrap();
    // Keep sending past several session timeouts: parked workers must keep
    // heartbeating under the wall clock, so nothing gets expelled and
    // every request completes.
    for seq in 0..6 {
        let (ts, values) = event_values("card-A", seq);
        let out = client.send("payments", ts, values).unwrap();
        assert!(!out.aggregations.is_empty());
        std::thread::sleep(std::time::Duration::from_millis(60));
    }
    cluster.stop().unwrap();
}

#[test]
fn worker_failure_is_surfaced_and_propagated_on_stop() {
    // Stage a deterministic worker failure: a unit whose data_root is an
    // unwritable path fails when the first rebalance creates its task
    // processors. The worker bails through the runtime's failure path, so
    // health() must flip and stop() must report it instead of hanging.
    let mut cfg = fresh_config("failprop", 1, 1);
    cfg.data_root = std::path::PathBuf::from("/proc/railgun-cannot-write-here");
    let mut cluster = Cluster::new(cfg).unwrap();
    // Start *before* the stream exists: the create-stream op then triggers
    // the rebalance on the worker thread, where task creation fails on the
    // unwritable root and the worker bails.
    cluster.start().unwrap();
    // The worker may die while create_stream's internal settle() is still
    // pumping (settle health-checks in threaded mode) — under load that
    // race goes either way, and an Engine error here IS the failure
    // surfacing, just earlier than the health() loop below.
    if let Err(e) = cluster.create_stream("payments", payments_schema(), &["cardId"]) {
        assert!(
            e.to_string().contains("worker thread failed"),
            "unexpected create_stream error: {e}"
        );
    }
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let failed = loop {
        if cluster.nodes().iter().any(|n| n.health().is_err()) {
            break true;
        }
        if std::time::Instant::now() > deadline {
            break false;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    };
    assert!(failed, "worker failure never surfaced via health()");
    let err = cluster.stop().expect_err("stop must report the worker failure");
    let msg = err.to_string();
    assert!(
        msg.contains("unit error") || msg.contains("unit panicked"),
        "unexpected failure report: {msg}"
    );
}
