//! Elastic membership end-to-end: checkpoint-based handover on
//! scale-out, scheduled drain with zero loss under live ingest, prompt
//! ticket failure when a node is lost, and the autoscaler loop — in
//! both execution modes.
//!
//! The zero-loss tests run a disturbed cluster in lockstep with an
//! undisturbed twin fed the identical event stream and require every
//! reply's aggregations to be byte-identical.

use std::path::Path;
use std::time::{Duration, Instant};

use railgun_core::{
    AutoscalerConfig, Cluster, ClusterConfig, ScaleDecision, SendOutcome, Ticket,
};
use railgun_types::{FieldType, RailgunError, Schema, TimeDelta, Timestamp, Value};

fn payments_schema() -> Schema {
    Schema::from_pairs(&[
        ("cardId", FieldType::Str),
        ("merchantId", FieldType::Str),
        ("amount", FieldType::Float),
    ])
    .unwrap()
}

fn fresh_config(tag: &str, nodes: u32, units: u32, partitions: u32) -> ClusterConfig {
    let mut cfg = ClusterConfig {
        nodes,
        units_per_node: units,
        partitions,
        ..ClusterConfig::default()
    };
    cfg.data_root = std::env::temp_dir().join(format!(
        "railgun-elastic-{}-{tag}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&cfg.data_root).ok();
    cfg
}

/// Boot a cluster with one stream and one `count(*), sum(amount)` query.
fn booted(cfg: ClusterConfig) -> Cluster {
    let mut cluster = Cluster::new(cfg).unwrap();
    cluster
        .create_stream("payments", payments_schema(), &["cardId"])
        .unwrap();
    cluster
        .register_query(
            "SELECT count(*), sum(amount) FROM payments GROUP BY cardId OVER sliding 1 hours",
        )
        .unwrap();
    cluster
}

fn send_card(cluster: &mut Cluster, via: usize, card: u64, ts: i64) -> SendOutcome {
    cluster
        .send_via(
            via,
            "payments",
            Timestamp::from_millis(ts),
            vec![
                Value::from(format!("card-{card}")),
                Value::from("m"),
                Value::from(1.0),
            ],
        )
        .unwrap()
}

/// Feed both clusters the same event through node 0 and require the
/// replies' aggregations to match byte for byte.
fn lockstep(cluster: &mut Cluster, twin: &mut Cluster, card: u64, ts: i64, label: &str) {
    let a = send_card(cluster, 0, card, ts);
    let b = send_card(twin, 0, card, ts);
    assert_eq!(
        a.aggregations, b.aggregations,
        "{label}: card {card} at t={ts} diverged from the undisturbed twin"
    );
}

#[test]
fn scale_out_restores_from_checkpoints_not_full_replay() {
    let mut cfg = fresh_config("handover", 1, 1, 4);
    cfg.checkpoint_every = 2;
    let mut cluster = booted(cfg);
    for round in 0..4 {
        for card in 0..8 {
            send_card(&mut cluster, 0, card, round * 10_000 + card as i64 * 100);
        }
    }
    let before = cluster.metrics_snapshot().elastic;
    assert_eq!(before.handovers_completed, 0, "no rebalance yet");
    assert_eq!(before.handover_fallbacks, 0);

    // Scale out: the gained tasks must restore from published checkpoint
    // images, not replay their logs from offset 0.
    cluster.add_node().unwrap();
    cluster.settle().unwrap();
    let after = cluster.metrics_snapshot().elastic;
    assert!(
        after.handovers_completed >= 1,
        "gained tasks should restore from checkpoints, got {after:?}"
    );
    assert_eq!(after.handover_fallbacks, 0, "no image was corrupt");
    // With checkpoint_every = 2 at most one event per task sits past the
    // last image, so the replayed tail is bounded by the partition count.
    assert!(
        after.tail_events_replayed <= 4,
        "tail should be events since the last image only, got {after:?}"
    );

    // Accuracy after the handover: every card has 4 events, a fifth send
    // must report 5.
    for card in 0..8 {
        let r = send_card(&mut cluster, 0, card, 100_000 + card as i64);
        assert_eq!(
            r.aggregations[0].value,
            Value::Int(5),
            "card {card} after scale-out"
        );
    }
}

/// Delete every `wal.log` under `dir` (the store checkpoint completeness
/// marker), making every published image restore-invalid.
fn corrupt_images(dir: &Path) -> usize {
    let mut hit = 0;
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            hit += corrupt_images(&path);
        } else if path.file_name().is_some_and(|n| n == "wal.log") {
            std::fs::remove_file(&path).unwrap();
            hit += 1;
        }
    }
    hit
}

#[test]
fn corrupt_checkpoint_image_falls_back_to_full_replay() {
    let mut cfg = fresh_config("fallback", 1, 1, 4);
    cfg.checkpoint_every = 2;
    let data_root = cfg.data_root.clone();
    let mut cluster = booted(cfg);
    for round in 0..4 {
        for card in 0..8 {
            send_card(&mut cluster, 0, card, round * 10_000 + card as i64 * 100);
        }
    }
    // Corrupt every published image (images live under data_root/ckpt/…;
    // live task dirs are elsewhere and stay intact).
    let corrupted = corrupt_images(&data_root.join("ckpt"));
    assert!(corrupted >= 1, "checkpoints should have been published");

    cluster.add_node().unwrap();
    cluster.settle().unwrap();
    let elastic = cluster.metrics_snapshot().elastic;
    assert!(
        elastic.handover_fallbacks >= 1,
        "corrupt images must be detected and fall back, got {elastic:?}"
    );

    // The degraded arm still converges: full replay rebuilds the exact
    // state, so the fifth send per card reports 5.
    for card in 0..8 {
        let r = send_card(&mut cluster, 0, card, 100_000 + card as i64);
        assert_eq!(
            r.aggregations[0].value,
            Value::Int(5),
            "card {card} after full-replay fallback"
        );
    }
}

#[test]
fn drain_under_live_ingest_matches_undisturbed_twin() {
    // 12 partitions over 6 units: the assignment budget gives every unit
    // exactly two, so the drained node is guaranteed to hold state.
    let mut cfg = fresh_config("drain", 3, 2, 12);
    // Co-prime with the per-partition event counts so the drain always
    // finds progress past the last periodic image.
    cfg.checkpoint_every = 7;
    let mut twin_cfg = fresh_config("drain-twin", 3, 2, 12);
    twin_cfg.checkpoint_every = 7;
    let mut cluster = booted(cfg);
    let mut twin = booted(twin_cfg);

    // 32 distinct cards so every partition (and thus every unit of the
    // node about to drain) carries state.
    for i in 0..64i64 {
        lockstep(&mut cluster, &mut twin, (i % 32) as u64, i * 1_000, "pre-drain");
    }
    // Planned scale-down mid-stream: flush final images, move the tasks,
    // remove the node. Nothing acked above may be lost.
    let flushed = cluster.drain_node(2).unwrap();
    assert!(flushed >= 1, "drain should flush uncheckpointed progress");
    assert_eq!(cluster.nodes().len(), 2);
    for i in 64..128i64 {
        lockstep(&mut cluster, &mut twin, (i % 32) as u64, i * 1_000, "post-drain");
    }

    let elastic = cluster.metrics_snapshot().elastic;
    assert_eq!(elastic.drains_completed, 1);
    assert_eq!(
        elastic.handover_fallbacks, 0,
        "drain-published images must all restore cleanly, got {elastic:?}"
    );
    assert!(
        elastic.handovers_completed >= 1,
        "survivors should restore the drained tasks from images, got {elastic:?}"
    );
}

#[test]
fn kill_add_drain_sequence_converges_with_replicas() {
    let mut cfg = fresh_config("churn", 3, 1, 6);
    cfg.replication = 2;
    cfg.session_timeout_ms = 1_000;
    cfg.checkpoint_every = 3;
    let mut twin_cfg = fresh_config("churn-twin", 3, 1, 6);
    twin_cfg.replication = 2;
    twin_cfg.session_timeout_ms = 1_000;
    twin_cfg.checkpoint_every = 3;
    let mut cluster = booted(cfg);
    let mut twin = booted(twin_cfg);

    let mut ts = 0i64;
    let mut burst = |cluster: &mut Cluster, twin: &mut Cluster, label: &str| {
        for _ in 0..12 {
            ts += 1_000;
            lockstep(cluster, twin, (ts / 1_000 % 6) as u64, ts, label);
        }
    };
    burst(&mut cluster, &mut twin, "steady");

    // Abrupt failure: replicas take over once the session expires.
    cluster.kill_node(1).unwrap();
    for step in 1..=10 {
        cluster.advance_time(step * 500);
        cluster.settle().unwrap();
        twin.advance_time(step * 500);
        twin.settle().unwrap();
    }
    burst(&mut cluster, &mut twin, "post-kill");

    // Scale back out; gained tasks restore from checkpoints.
    cluster.add_node().unwrap();
    burst(&mut cluster, &mut twin, "post-add");

    // Planned scale-down of a survivor (index 1 = original node 2; node
    // 0 keeps serving the ingest).
    cluster.drain_node(1).unwrap();
    burst(&mut cluster, &mut twin, "post-drain");

    let elastic = cluster.metrics_snapshot().elastic;
    assert_eq!(elastic.drains_completed, 1);
    assert!(
        elastic.handovers_completed >= 1,
        "checkpointed tasks should hand over, got {elastic:?}"
    );
}

#[test]
fn threaded_add_and_drain_converge_under_live_ingest() {
    let mut cfg = fresh_config("threaded", 2, 2, 4);
    cfg.checkpoint_every = 4;
    let mut twin_cfg = fresh_config("threaded-twin", 2, 2, 4);
    twin_cfg.checkpoint_every = 4;
    let mut cluster = booted(cfg);
    let mut twin = booted(twin_cfg); // the twin stays in pump mode
    cluster.start().unwrap();

    for i in 0..16i64 {
        lockstep(&mut cluster, &mut twin, (i % 4) as u64, i * 1_000, "threaded");
    }
    // New node joins threaded and picks work up via handover.
    cluster.add_node().unwrap();
    for i in 16..32i64 {
        lockstep(&mut cluster, &mut twin, (i % 4) as u64, i * 1_000, "threaded-add");
    }
    // Drain stops the node's workers, flushes inline, then removes it;
    // the rest of the cluster keeps running threaded.
    cluster.drain_node(1).unwrap();
    assert!(cluster.is_running(), "survivors stay threaded");
    for i in 32..48i64 {
        lockstep(&mut cluster, &mut twin, (i % 4) as u64, i * 1_000, "threaded-drain");
    }
    cluster.stop().unwrap();

    let elastic = cluster.metrics_snapshot().elastic;
    assert_eq!(elastic.drains_completed, 1);
    assert_eq!(elastic.handover_fallbacks, 0, "got {elastic:?}");
}

#[test]
fn killed_node_tickets_fail_promptly_with_node_lost() {
    let mut cluster = booted(fresh_config("lost", 2, 1, 2));
    let ticket = cluster
        .send_async_via(
            1,
            "payments",
            Timestamp::from_millis(1_000),
            vec![Value::from("c"), Value::from("m"), Value::from(1.0)],
        )
        .unwrap();
    cluster.kill_node(1).unwrap();

    // The reply can never arrive; the collect must fail immediately with
    // a typed error instead of burning the full collect timeout.
    let start = Instant::now();
    let err = cluster.collect(ticket).unwrap_err();
    assert!(
        matches!(err, RailgunError::NodeLost(_)),
        "expected NodeLost, got {err:?}"
    );
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "NodeLost must be prompt, took {:?}",
        start.elapsed()
    );
    assert!(matches!(
        cluster.try_collect(ticket),
        Err(RailgunError::NodeLost(_))
    ));
    // A ticket that never existed is a plain argument error, not a loss.
    let bogus = Ticket {
        node: 777,
        request_id: 1,
    };
    assert!(matches!(
        cluster.collect(bogus),
        Err(RailgunError::InvalidArgument(_))
    ));
}

#[test]
fn drain_refuses_the_last_node_and_bad_indices() {
    let mut cluster = booted(fresh_config("last", 1, 1, 2));
    assert!(matches!(
        cluster.drain_node(0),
        Err(RailgunError::InvalidArgument(_))
    ));
    assert!(matches!(
        cluster.drain_node(5),
        Err(RailgunError::InvalidArgument(_))
    ));
    // Still serving after the refusals.
    let r = send_card(&mut cluster, 0, 0, 1_000);
    assert_eq!(r.aggregations[0].value, Value::Int(1));
}

#[test]
fn autoscale_tick_drains_idle_node_down_to_min() {
    let mut cfg = fresh_config("as-shrink", 2, 1, 2);
    cfg.checkpoint_every = 2;
    cfg.autoscaler = AutoscalerConfig {
        enabled: true,
        min_nodes: 1,
        max_nodes: 4,
        scale_up_after: 99,
        shrink_after: 2,
        cooldown: 0,
        ..AutoscalerConfig::default()
    };
    let mut cluster = booted(cfg);
    for i in 0..6i64 {
        send_card(&mut cluster, 0, (i % 2) as u64, i * 1_000);
    }
    assert_eq!(cluster.autoscale_tick().unwrap(), ScaleDecision::Hold); // prime
    assert_eq!(cluster.autoscale_tick().unwrap(), ScaleDecision::Hold); // idle 1
    assert_eq!(cluster.autoscale_tick().unwrap(), ScaleDecision::Shrink); // idle 2
    assert_eq!(cluster.nodes().len(), 1, "shrink drains the newest node");
    let elastic = cluster.metrics_snapshot().elastic;
    assert_eq!(elastic.autoscaler_shrinks, 1);
    assert_eq!(elastic.drains_completed, 1, "shrink goes through drain");
    // At min_nodes the controller holds forever after.
    for _ in 0..5 {
        assert_eq!(cluster.autoscale_tick().unwrap(), ScaleDecision::Hold);
    }
    // The survivor took the state over: each card had 3 events.
    for card in 0..2 {
        let r = send_card(&mut cluster, 0, card, 100_000 + card as i64);
        assert_eq!(r.aggregations[0].value, Value::Int(4), "card {card}");
    }
}

#[test]
fn autoscale_tick_adds_node_when_p99_nears_slo() {
    let mut cfg = fresh_config("as-add", 1, 1, 2);
    cfg.telemetry = true;
    cfg.autoscaler = AutoscalerConfig {
        enabled: true,
        min_nodes: 1,
        max_nodes: 2,
        // Zero headroom: any recorded completion counts as hot, which
        // makes the trigger deterministic regardless of machine speed.
        slo_headroom: 0.0,
        scale_up_after: 2,
        shrink_after: 99,
        cooldown: 0,
    };
    let mut cluster = Cluster::new(cfg).unwrap();
    cluster
        .create_stream("payments", payments_schema(), &["cardId"])
        .unwrap();
    let qid = cluster
        .register_query(
            "SELECT count(*) FROM payments GROUP BY cardId OVER sliding 1 hours",
        )
        .unwrap();
    cluster.set_query_slo(qid, TimeDelta::from_millis(10));

    send_card(&mut cluster, 0, 0, 1_000);
    assert_eq!(cluster.autoscale_tick().unwrap(), ScaleDecision::Hold); // prime
    send_card(&mut cluster, 0, 0, 2_000);
    assert_eq!(cluster.autoscale_tick().unwrap(), ScaleDecision::Hold); // hot 1
    send_card(&mut cluster, 0, 0, 3_000);
    assert_eq!(cluster.autoscale_tick().unwrap(), ScaleDecision::Add); // hot 2
    assert_eq!(cluster.nodes().len(), 2);
    assert_eq!(cluster.metrics_snapshot().elastic.autoscaler_adds, 1);
    // At max_nodes further hot observations hold.
    for i in 0..5i64 {
        send_card(&mut cluster, 0, 0, 10_000 + i * 1_000);
        assert_eq!(cluster.autoscale_tick().unwrap(), ScaleDecision::Hold);
    }
    let r = send_card(&mut cluster, 0, 0, 100_000);
    assert_eq!(r.aggregations[0].value, Value::Int(9), "still accurate");
}
