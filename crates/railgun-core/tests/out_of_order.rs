//! Out-of-order event handling through the full task processor (§4.1.1):
//! late events are admitted while their chunk is open or in transition,
//! enter windows that still cover them, and are discarded or rewritten
//! once their chunk is finalized.

use railgun_core::{parse_query, TaskConfig, TaskProcessor};
use railgun_reservoir::{LatePolicy, ReservoirConfig};
use railgun_types::{Event, EventId, FieldType, Schema, TimeDelta, Timestamp, Value};

fn tmp(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("railgun-ooo-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn schema() -> Schema {
    Schema::from_pairs(&[("cardId", FieldType::Str), ("amount", FieldType::Float)]).unwrap()
}

fn proc(tag: &str, hold_ms: i64, policy: LatePolicy) -> TaskProcessor {
    let cfg = TaskConfig {
        reservoir: ReservoirConfig {
            chunk_target_events: 8,
            transition_hold: TimeDelta::from_millis(hold_ms),
            late_policy: policy,
            ..ReservoirConfig::default()
        },
        ..TaskConfig::default()
    };
    let mut tp = TaskProcessor::open(&tmp(tag), "payments--cardId", 0, schema(), cfg).unwrap();
    tp.register_query(
        &parse_query("SELECT count(*), sum(amount) FROM payments GROUP BY cardId OVER sliding 1 min")
            .unwrap(),
    )
    .unwrap();
    tp
}

fn ev(id: u64, ts: i64, amount: f64) -> Event {
    Event::new(
        EventId(id),
        Timestamp::from_millis(ts),
        vec![Value::from("card-1"), Value::from(amount)],
    )
}

fn count_of(results: &[railgun_core::AggregationResult]) -> i64 {
    results
        .iter()
        .find(|r| r.name.starts_with("count"))
        .and_then(|r| r.value.as_i64())
        .unwrap()
}

#[test]
fn late_event_inside_window_is_counted_once() {
    let mut tp = proc("inside", 60_000, LatePolicy::Discard);
    tp.process_event(&ev(1, 10_000, 5.0)).unwrap();
    tp.process_event(&ev(2, 20_000, 5.0)).unwrap();
    // Late event at t=15s, still within the 1-min window: must count.
    let (r, _) = tp.process_event(&ev(3, 15_000, 5.0)).unwrap();
    assert_eq!(count_of(&r), 3);
    // And it must expire exactly once: at t=76s only the t=20s event plus
    // the new arrival remain (15s and 10s expired).
    let (r, _) = tp.process_event(&ev(4, 76_000, 5.0)).unwrap();
    assert_eq!(count_of(&r), 2);
    // Conservation: total inserts == total evictions + live events.
    let (r, _) = tp.process_event(&ev(5, 500_000, 5.0)).unwrap();
    assert_eq!(count_of(&r), 1, "everything old expired exactly once");
}

#[test]
fn too_late_event_discarded_does_not_corrupt_counts() {
    let mut tp = proc("discard", 0, LatePolicy::Discard);
    // Two full chunks (8 events each) finalize immediately (hold = 0).
    for i in 0..16 {
        tp.process_event(&ev(i, 30_000 + i as i64 * 10, 1.0)).unwrap();
    }
    // ts=1ms is far behind the finalized frontier: discarded.
    let (r, _) = tp.process_event(&ev(99, 1, 1.0)).unwrap();
    assert_eq!(count_of(&r), 16, "discarded event does not count");
    assert_eq!(tp.stats().late_dropped, 1);
    // Window still expires cleanly afterwards.
    let (r, _) = tp.process_event(&ev(100, 300_000, 1.0)).unwrap();
    assert_eq!(count_of(&r), 1);
}

#[test]
fn too_late_event_rewritten_is_counted_at_new_timestamp() {
    let mut tp = proc("rewrite", 0, LatePolicy::Rewrite);
    for i in 0..16 {
        tp.process_event(&ev(i, 30_000 + i as i64 * 10, 1.0)).unwrap();
    }
    let before = tp.stats();
    let (r, _) = tp.process_event(&ev(99, 1, 2.0)).unwrap();
    // Rewritten into the acceptable range => counted.
    assert_eq!(count_of(&r), 17);
    assert_eq!(tp.stats().late_dropped, before.late_dropped);
    // Expiry stays balanced.
    let (r, _) = tp.process_event(&ev(100, 400_000, 1.0)).unwrap();
    assert_eq!(count_of(&r), 1);
}

#[test]
fn interleaved_disorder_conserves_insert_evict_balance() {
    // A jittered stream (each timestamp ±400ms around an increasing base):
    // every admitted event must be inserted and evicted exactly once.
    let mut tp = proc("jitter", 5_000, LatePolicy::Discard);
    let mut state = 0xabcdu64;
    let mut admitted = 0u64;
    for i in 0..400u64 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let jitter = (state % 800) as i64 - 400;
        let ts = 10_000 + i as i64 * 100 + jitter;
        let before = tp.stats();
        tp.process_event(&ev(i, ts, 1.0)).unwrap();
        let after = tp.stats();
        if after.late_dropped == before.late_dropped {
            admitted += 1;
        }
    }
    // Push far forward: everything admitted must have expired.
    let (r, _) = tp.process_event(&ev(9_999, 10_000_000, 1.0)).unwrap();
    assert_eq!(count_of(&r), 1, "only the final event remains in window");
    let s = tp.stats();
    assert_eq!(
        s.inserts,
        s.evictions + 1,
        "inserted-but-never-evicted events would corrupt aggregates \
         (admitted={admitted})"
    );
}

#[test]
fn schema_evolution_mid_stream() {
    // The reservoir's schema registry lets old chunks decode after the
    // stream's schema evolves; the engine keeps serving the original plan.
    let dir = tmp("evolve");
    let cfg = TaskConfig::default();
    let mut tp = TaskProcessor::open(&dir, "payments--cardId", 0, schema(), cfg).unwrap();
    tp.register_query(
        &parse_query("SELECT count(*) FROM payments GROUP BY cardId OVER sliding 1 hours").unwrap(),
    )
    .unwrap();
    for i in 0..20 {
        tp.process_event(&ev(i, i as i64 * 1000, 1.0)).unwrap();
    }
    let (r, _) = tp.process_event(&ev(20, 20_000, 1.0)).unwrap();
    assert_eq!(count_of(&r), 21);
    // 21 events across several chunks; reservoir holds them all.
    assert_eq!(tp.reservoir_stats().appended, 21);
}
