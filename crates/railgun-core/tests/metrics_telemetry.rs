//! End-to-end tests of the telemetry and SLO plane (PR 5).
//!
//! Covers both execution modes: deterministic pump mode and the threaded
//! runtime (where task processors are owned by worker threads and the
//! old `TaskStats` fields used to be unreachable).

use std::time::Duration;

use railgun_core::lang::{millis, mins, Agg, Query, Window};
use railgun_core::session::Session;
use railgun_core::{Cluster, ClusterConfig, MetricsSnapshot, QueryId};
use railgun_types::{FieldType, RailgunError, Timestamp, Value};

fn fresh_config(tag: &str) -> ClusterConfig {
    let mut cfg = ClusterConfig::single_node();
    cfg.data_root = std::env::temp_dir().join(format!(
        "railgun-metrics-{}-{tag}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&cfg.data_root).ok();
    cfg
}

fn payments_session(cfg: ClusterConfig) -> Session {
    let mut session = Session::new(cfg).unwrap();
    session
        .create_stream(
            "payments",
            &[("cardId", FieldType::Str), ("amount", FieldType::Float)],
            &["cardId"],
        )
        .unwrap();
    session
}

fn assert_monotone(earlier: &MetricsSnapshot, later: &MetricsSnapshot) {
    assert!(later.tasks.events_processed >= earlier.tasks.events_processed);
    assert!(later.tasks.inserts >= earlier.tasks.inserts);
    assert!(later.tasks.state_writes >= earlier.tasks.state_writes);
    assert!(
        later.stages.frontend_e2e.count() >= earlier.stages.frontend_e2e.count()
    );
    assert!(later.counters.slo_breaches >= earlier.counters.slo_breaches);
    assert!(
        later.counters.backpressure_rejections >= earlier.counters.backpressure_rejections
    );
    for q in &earlier.queries {
        let l = later.query(q.id).expect("queries persist in snapshots");
        assert!(l.completed >= q.completed);
        assert!(l.breaches >= q.breaches);
    }
}

#[test]
fn pump_mode_metrics_per_query_and_stages() {
    let mut cfg = fresh_config("pump");
    cfg.telemetry = true;
    let mut session = payments_session(cfg);
    let q1 = session
        .register(
            Query::select(Agg::sum("amount"))
                .from("payments")
                .group_by(["cardId"])
                .over(Window::sliding(mins(5))),
        )
        .unwrap();
    let q2 = session
        .register(
            Query::select(Agg::count())
                .from("payments")
                .group_by(["cardId"])
                .over(Window::sliding(mins(1))),
        )
        .unwrap();

    let stream = session.stream("payments").unwrap();
    for i in 0..20i64 {
        let event = stream
            .event(Timestamp::from_millis(1_000 + i * 250))
            .set("cardId", format!("card-{}", i % 3).as_str())
            .set("amount", 1.5)
            .build()
            .unwrap();
        session.send(event).unwrap();
    }
    let s1 = session.metrics();
    assert!(s1.telemetry_enabled);

    // Per-query ladders keyed by QueryId.
    assert_eq!(s1.queries.len(), 2);
    let m1 = s1.query(q1.id()).expect("q1 tracked");
    let m2 = s1.query(q2.id()).expect("q2 tracked");
    assert_eq!(m1.completed, 20);
    assert_eq!(m2.completed, 20);
    assert_eq!(m1.latency.count(), 20);
    assert!(m1.ladder().p50_us <= m1.ladder().p999_us);
    assert!(s1.query(QueryId(0xDEAD)).is_none());

    // Stage histograms fill in pump mode too.
    assert_eq!(s1.stages.frontend_e2e.count(), 20);
    assert!(s1.stages.unit_process.count() >= 20);
    assert!(s1.stages.unit_poll.count() > 0);
    assert!(s1.stages.reservoir_append.count() >= 20);
    assert!(s1.stages.store_wal_append.count() > 0);

    // Task counters aggregate through the registry.
    assert_eq!(s1.tasks.events_processed, 20);
    assert!(s1.tasks.inserts >= 20);
    assert!(s1.tasks.state_writes > 0);

    // Monotonicity across more traffic.
    for i in 0..5i64 {
        let event = stream
            .event(Timestamp::from_millis(10_000 + i * 250))
            .set("cardId", "card-0")
            .set("amount", 2.0)
            .build()
            .unwrap();
        session.send(event).unwrap();
    }
    let s2 = session.metrics();
    assert_monotone(&s1, &s2);
    assert_eq!(s2.tasks.events_processed, 25);
    assert_eq!(s2.query(q1.id()).unwrap().completed, 25);
}

#[test]
fn telemetry_off_keeps_snapshot_counters_but_no_stage_histograms() {
    let cfg = fresh_config("off");
    let mut session = payments_session(cfg);
    session
        .register(
            Query::select(Agg::count())
                .from("payments")
                .group_by(["cardId"])
                .over(Window::sliding(mins(5))),
        )
        .unwrap();
    let stream = session.stream("payments").unwrap();
    for i in 0..4i64 {
        let event = stream
            .event(Timestamp::from_millis(1_000 + i))
            .set("cardId", "A")
            .set("amount", 1.0)
            .build()
            .unwrap();
        session.send(event).unwrap();
    }
    let snap = session.metrics();
    assert!(!snap.telemetry_enabled);
    // Stage histograms stay empty (no clock reads on the hot path)…
    assert_eq!(snap.stages.frontend_e2e.count(), 0);
    assert_eq!(snap.stages.reservoir_append.count(), 0);
    // …while the always-on task counters remain reachable.
    assert_eq!(snap.tasks.events_processed, 4);
    // No SLO and no telemetry => no per-query tracking was armed.
    assert!(snap.queries.is_empty());
}

#[test]
fn late_dropped_counter_reachable_from_snapshot() {
    let mut cfg = fresh_config("late");
    // Tiny chunks so the reservoir finalizes quickly and a far-past event
    // falls behind the finalized frontier (LatePolicy::Discard default).
    cfg.task.reservoir.chunk_target_events = 4;
    let mut session = payments_session(cfg);
    session
        .register(
            Query::select(Agg::count())
                .from("payments")
                .group_by(["cardId"])
                .over(Window::sliding(mins(5))),
        )
        .unwrap();
    let stream = session.stream("payments").unwrap();
    for i in 0..16i64 {
        let event = stream
            .event(Timestamp::from_millis(100_000 + i * 1_000))
            .set("cardId", "A")
            .set("amount", 1.0)
            .build()
            .unwrap();
        session.send(event).unwrap();
    }
    // Far older than anything finalized: dropped per policy.
    let ancient = stream
        .event(Timestamp::from_millis(1))
        .set("cardId", "A")
        .set("amount", 1.0)
        .build()
        .unwrap();
    session.send(ancient).unwrap();
    let snap = session.metrics();
    assert_eq!(
        snap.tasks.late_dropped, 1,
        "late_dropped must be readable from the public snapshot: {:?}",
        snap.tasks
    );
}

#[test]
fn slo_breach_fires_under_injected_stall() {
    let mut cfg = fresh_config("slo-breach");
    cfg.telemetry = true;
    let mut session = payments_session(cfg);
    let q = session
        .register(
            Query::select(Agg::count())
                .from("payments")
                .group_by(["cardId"])
                .over(Window::sliding(mins(5)))
                .with_slo(millis(1)),
        )
        .unwrap();
    // Injected stall: fire the event asynchronously, let nobody pump the
    // cluster past the budget, then collect — the reply completes well
    // after the 1 ms SLO.
    let ticket = session
        .cluster_mut()
        .send_async(
            "payments",
            Timestamp::from_millis(1_000),
            vec![Value::from("card-1"), Value::from(9.0)],
        )
        .unwrap();
    std::thread::sleep(Duration::from_millis(20));
    session.cluster_mut().collect(ticket).unwrap();

    let snap = session.metrics();
    let qm = snap.query(q.id()).expect("slo query tracked");
    assert_eq!(qm.slo, Some(millis(1)));
    assert_eq!(qm.completed, 1);
    assert_eq!(qm.breaches, 1, "stalled completion must breach the 1 ms SLO");
    assert_eq!(snap.counters.slo_breaches, 1);
    assert!(qm.ladder().max_us > 1_000);
}

#[test]
fn slo_overload_escalates_backpressure_before_cap() {
    let mut cfg = fresh_config("overload");
    cfg.max_in_flight = 8;
    let mut session = payments_session(cfg);
    session
        .register(
            Query::select(Agg::count())
                .from("payments")
                .group_by(["cardId"])
                .over(Window::sliding(mins(5)))
                .with_slo(millis(1)),
        )
        .unwrap();
    let cluster = session.cluster_mut();
    // Fill half the in-flight budget without pumping (injected stall).
    for i in 0..4i64 {
        cluster
            .send_async(
                "payments",
                Timestamp::from_millis(1_000 + i),
                vec![Value::from("card-1"), Value::from(1.0)],
            )
            .unwrap();
    }
    // Wait past SLO_OVERLOAD_MULTIPLIER × the 1 ms budget.
    std::thread::sleep(Duration::from_millis(25));
    let err = cluster
        .send_async(
            "payments",
            Timestamp::from_millis(9_999),
            vec![Value::from("card-1"), Value::from(1.0)],
        )
        .unwrap_err();
    assert!(
        matches!(err, RailgunError::Backpressure(_)),
        "expected SLO-overload backpressure well before the cap of 8, got: {err}"
    );
    let snap = session.metrics();
    assert!(snap.counters.backpressure_rejections >= 1);
}

#[test]
fn threaded_mode_metrics_end_to_end() {
    let mut cfg = fresh_config("threaded");
    cfg.telemetry = true;
    cfg.units_per_node = 2;
    cfg.partitions = 4;
    cfg.collect_timeout_ms = 30_000;
    let mut session = payments_session(cfg);
    let q = session
        .register(
            Query::select(Agg::sum("amount"))
                .select(Agg::count())
                .from("payments")
                .group_by(["cardId"])
                .over(Window::sliding(mins(5)))
                .with_slo(millis(30_000)),
        )
        .unwrap();

    session.cluster_mut().start().unwrap();
    let mut client = session.cluster_mut().client().unwrap();
    let mut ids = Vec::new();
    for i in 0..40i64 {
        ids.push(
            client
                .send_async(
                    "payments",
                    Timestamp::from_millis(1_000 + i * 100),
                    vec![
                        Value::from(format!("card-{}", i % 5)),
                        Value::from(2.0),
                    ],
                )
                .unwrap(),
        );
    }
    for id in ids {
        client.collect(id).unwrap();
    }
    // Snapshot while the workers still own the task processors — this is
    // exactly the state where TaskStats used to be unreachable.
    let running = session.metrics();
    assert!(session.cluster().is_running());
    assert_eq!(running.tasks.events_processed, 40);
    let qm = running.query(q.id()).expect("keyed by QueryId");
    assert_eq!(qm.completed, 40);
    assert!(qm.latency.count() == 40);
    assert_eq!(qm.breaches, 0, "generous SLO must not breach");
    assert!(running.stages.frontend_e2e.count() == 40);
    // Unit processing is sampled once per *run* of consecutive same-task
    // messages (batched ingest), so its count is between 1 and the event
    // count — and every event shows up in the batch-size histogram.
    let runs = running.stages.unit_process.count();
    assert!((1..=40).contains(&runs), "runs: {runs}");
    assert!(running.batching.batch_size.count() >= runs);
    assert!(running.stages.reservoir_append.count() >= 40);

    session.cluster_mut().stop().unwrap();
    let stopped = session.metrics();
    assert_monotone(&running, &stopped);
    assert_eq!(stopped.tasks.events_processed, 40, "stats survive stop()");
}

#[test]
fn cluster_level_snapshot_without_session() {
    let mut cfg = fresh_config("cluster-direct");
    cfg.telemetry = true;
    let mut cluster = Cluster::new(cfg).unwrap();
    cluster
        .create_stream(
            "payments",
            railgun_types::Schema::from_pairs(&[
                ("cardId", FieldType::Str),
                ("amount", FieldType::Float),
            ])
            .unwrap(),
            &["cardId"],
        )
        .unwrap();
    let id = cluster
        .register_query("SELECT count(*) FROM payments GROUP BY cardId OVER sliding 5 min")
        .unwrap();
    cluster.set_query_slo(id, millis(60_000));
    cluster
        .send(
            "payments",
            Timestamp::from_millis(1_000),
            vec![Value::from("card-1"), Value::from(1.0)],
        )
        .unwrap();
    let snap = cluster.metrics_snapshot();
    assert_eq!(snap.query(id).unwrap().completed, 1);
    assert_eq!(snap.query(id).unwrap().breaches, 0);
    assert_eq!(snap.tasks.events_processed, 1);
}
