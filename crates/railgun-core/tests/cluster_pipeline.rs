//! End-to-end pipeline tests: client → front-end → event topics →
//! processor units → task processors → reply topic → client (Figure 3).

use railgun_core::{Cluster, ClusterConfig};
use railgun_types::{FieldType, Schema, TimeDelta, Timestamp, Value};

fn payments_schema() -> Schema {
    Schema::from_pairs(&[
        ("cardId", FieldType::Str),
        ("merchantId", FieldType::Str),
        ("amount", FieldType::Float),
    ])
    .unwrap()
}

fn fresh_config(tag: &str, nodes: u32, units: u32, partitions: u32) -> ClusterConfig {
    let mut cfg = ClusterConfig {
        nodes,
        units_per_node: units,
        partitions,
        ..ClusterConfig::default()
    };
    cfg.data_root = std::env::temp_dir().join(format!(
        "railgun-itest-{}-{tag}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&cfg.data_root).ok();
    cfg
}

fn find<'a>(
    out: &'a railgun_core::SendOutcome,
    prefix: &str,
) -> &'a railgun_core::AggregationResult {
    out.aggregations
        .iter()
        .find(|a| a.name.starts_with(prefix))
        .unwrap_or_else(|| panic!("no aggregation {prefix}* in {:?}", out.aggregations))
}

#[test]
fn single_node_q1_q2_roundtrip() {
    let mut cluster = Cluster::new(fresh_config("q1q2", 1, 1, 2)).unwrap();
    cluster
        .create_stream("payments", payments_schema(), &["cardId", "merchantId"])
        .unwrap();
    cluster
        .register_query(
            "SELECT sum(amount), count(*) FROM payments GROUP BY cardId OVER sliding 5 min",
        )
        .unwrap();
    cluster
        .register_query(
            "SELECT avg(amount) FROM payments GROUP BY merchantId OVER sliding 5 min",
        )
        .unwrap();

    let r1 = cluster
        .send(
            "payments",
            Timestamp::from_millis(1_000),
            vec![Value::from("card-A"), Value::from("m-1"), Value::from(10.0)],
        )
        .unwrap();
    assert_eq!(find(&r1, "sum(amount)").value, Value::Float(10.0));
    assert_eq!(find(&r1, "count(*)").value, Value::Int(1));
    assert_eq!(find(&r1, "avg(amount)").value, Value::Float(10.0));

    // Same card, different merchant.
    let r2 = cluster
        .send(
            "payments",
            Timestamp::from_millis(2_000),
            vec![Value::from("card-A"), Value::from("m-2"), Value::from(30.0)],
        )
        .unwrap();
    assert_eq!(find(&r2, "sum(amount)").value, Value::Float(40.0));
    assert_eq!(find(&r2, "count(*)").value, Value::Int(2));
    assert_eq!(find(&r2, "avg(amount)").value, Value::Float(30.0), "m-2 only");

    // Different card, merchant m-1 again.
    let r3 = cluster
        .send(
            "payments",
            Timestamp::from_millis(3_000),
            vec![Value::from("card-B"), Value::from("m-1"), Value::from(50.0)],
        )
        .unwrap();
    assert_eq!(find(&r3, "sum(amount)").value, Value::Float(50.0));
    assert_eq!(find(&r3, "avg(amount)").value, Value::Float(30.0), "(10+50)/2");
}

#[test]
fn events_route_by_entity_across_partitions_and_units() {
    // 2 nodes × 2 units, 8 partitions: per-card accuracy must survive the
    // distribution (same card always hashes to the same partition).
    let mut cluster = Cluster::new(fresh_config("route", 2, 2, 8)).unwrap();
    cluster
        .create_stream("payments", payments_schema(), &["cardId"])
        .unwrap();
    cluster
        .register_query(
            "SELECT count(*), sum(amount) FROM payments GROUP BY cardId OVER sliding 1 hours",
        )
        .unwrap();
    // 10 cards × 5 events each, interleaved.
    for round in 0..5 {
        for card in 0..10 {
            let r = cluster
                .send(
                    "payments",
                    Timestamp::from_millis(round * 10_000 + card * 100),
                    vec![
                        Value::from(format!("card-{card}")),
                        Value::from("m"),
                        Value::from(1.0),
                    ],
                )
                .unwrap();
            assert_eq!(
                find(&r, "count(*)").value,
                Value::Int(round + 1),
                "card {card} round {round}"
            );
        }
    }
}

#[test]
fn sliding_window_accuracy_through_the_full_stack() {
    let mut cluster = Cluster::new(fresh_config("window", 1, 1, 1)).unwrap();
    cluster
        .create_stream("payments", payments_schema(), &["cardId"])
        .unwrap();
    cluster
        .register_query("SELECT count(*) FROM payments GROUP BY cardId OVER sliding 1 min")
        .unwrap();
    let send_at = |cluster: &mut Cluster, ts: i64| {
        cluster
            .send(
                "payments",
                Timestamp::from_millis(ts),
                vec![Value::from("c"), Value::from("m"), Value::from(1.0)],
            )
            .unwrap()
    };
    send_at(&mut cluster, 0);
    send_at(&mut cluster, 30_000);
    let r = send_at(&mut cluster, 59_000);
    assert_eq!(find(&r, "count(*)").value, Value::Int(3));
    // At 61s the t=0 event has expired.
    let r = send_at(&mut cluster, 61_000);
    assert_eq!(find(&r, "count(*)").value, Value::Int(3));
    // At 95s the 30s event has expired too: events at 59s, 61s, 95s remain.
    let r = send_at(&mut cluster, 95_000);
    assert_eq!(find(&r, "count(*)").value, Value::Int(3));
    // Far future: only the new event remains.
    let r = send_at(&mut cluster, 500_000);
    assert_eq!(find(&r, "count(*)").value, Value::Int(1));
}

#[test]
fn rejects_bad_registrations() {
    let mut cluster = Cluster::new(fresh_config("rejects", 1, 1, 2)).unwrap();
    cluster
        .create_stream("payments", payments_schema(), &["cardId"])
        .unwrap();
    // Unknown stream.
    assert!(cluster
        .register_query("SELECT count(*) FROM nope GROUP BY cardId OVER sliding 1 min")
        .is_err());
    // Group by without any partitioner.
    assert!(cluster
        .register_query(
            "SELECT count(*) FROM payments GROUP BY merchantId OVER sliding 1 min"
        )
        .is_err());
    // Unknown field.
    assert!(cluster
        .register_query("SELECT sum(nope) FROM payments GROUP BY cardId OVER sliding 1 min")
        .is_err());
    // Bad event arity.
    assert!(cluster
        .send("payments", Timestamp::from_millis(0), vec![Value::from(1.0)])
        .is_err());
}

#[test]
fn multi_groupby_query_uses_partitioner_subset() {
    // GROUP BY (cardId, merchantId) can run on the card topic (§4: events
    // hashed by a subset of the group-by keys).
    let mut cluster = Cluster::new(fresh_config("subset", 1, 2, 4)).unwrap();
    cluster
        .create_stream("payments", payments_schema(), &["cardId"])
        .unwrap();
    cluster
        .register_query(
            "SELECT count(*) FROM payments GROUP BY cardId, merchantId OVER sliding 5 min",
        )
        .unwrap();
    let send = |cluster: &mut Cluster, card: &str, merchant: &str, ts: i64| {
        cluster
            .send(
                "payments",
                Timestamp::from_millis(ts),
                vec![Value::from(card), Value::from(merchant), Value::from(1.0)],
            )
            .unwrap()
    };
    send(&mut cluster, "A", "m1", 1_000);
    send(&mut cluster, "A", "m2", 2_000);
    let r = send(&mut cluster, "A", "m1", 3_000);
    assert_eq!(
        find(&r, "count(*)").value,
        Value::Int(2),
        "count per (card, merchant) pair"
    );
}

#[test]
fn duplicate_events_flagged_and_not_double_counted() {
    // The front-end assigns unique ids, so to exercise dedup we push the
    // same logical event through two different sends is NOT a dup. Instead
    // verify at-least-once handling by sending twice and checking counts
    // only ever advance by one per unique event.
    let mut cluster = Cluster::new(fresh_config("dups", 1, 1, 1)).unwrap();
    cluster
        .create_stream("payments", payments_schema(), &["cardId"])
        .unwrap();
    cluster
        .register_query("SELECT count(*) FROM payments GROUP BY cardId OVER sliding 5 min")
        .unwrap();
    for i in 1..=3 {
        let r = cluster
            .send(
                "payments",
                Timestamp::from_millis(i * 1000),
                vec![Value::from("c"), Value::from("m"), Value::from(1.0)],
            )
            .unwrap();
        assert_eq!(find(&r, "count(*)").value, Value::Int(i));
        assert!(!r.duplicate);
    }
}

#[test]
fn tumbling_and_infinite_windows_through_stack() {
    let mut cluster = Cluster::new(fresh_config("kinds", 1, 1, 1)).unwrap();
    cluster
        .create_stream("payments", payments_schema(), &["cardId"])
        .unwrap();
    cluster
        .register_query(
            "SELECT count(*) FROM payments GROUP BY cardId OVER tumbling 1 min",
        )
        .unwrap();
    cluster
        .register_query(
            "SELECT countDistinct(merchantId) FROM payments GROUP BY cardId OVER infinite",
        )
        .unwrap();
    let send = |cluster: &mut Cluster, merchant: &str, ts: i64| {
        cluster
            .send(
                "payments",
                Timestamp::from_millis(ts),
                vec![Value::from("c"), Value::from(merchant), Value::from(1.0)],
            )
            .unwrap()
    };
    let r = send(&mut cluster, "m1", 10_000);
    assert_eq!(find(&r, "count(*)").value, Value::Int(1));
    let r = send(&mut cluster, "m2", 50_000);
    assert_eq!(find(&r, "count(*)").value, Value::Int(2));
    // New tumbling bucket; infinite window remembers both merchants.
    let r = send(&mut cluster, "m1", 70_000);
    assert_eq!(find(&r, "count(*)").value, Value::Int(1));
    assert_eq!(find(&r, "countDistinct").value, Value::Int(2));
}

#[test]
fn node_addition_rebalances_and_keeps_serving() {
    let mut cluster = Cluster::new(fresh_config("elastic", 1, 1, 4)).unwrap();
    cluster
        .create_stream("payments", payments_schema(), &["cardId"])
        .unwrap();
    cluster
        .register_query("SELECT count(*) FROM payments GROUP BY cardId OVER sliding 1 hours")
        .unwrap();
    for i in 0..8 {
        cluster
            .send(
                "payments",
                Timestamp::from_millis(i * 1000),
                vec![
                    Value::from(format!("card-{}", i % 4)),
                    Value::from("m"),
                    Value::from(1.0),
                ],
            )
            .unwrap();
    }
    // Scale out; tasks rebalance (sticky), new node replays its tasks.
    cluster.add_node().unwrap();
    cluster.settle().unwrap();
    // Counts continue correctly for every card: each card has 2 events so
    // far, the third send per card must report 3.
    for card in 0..4 {
        let r = cluster
            .send(
                "payments",
                Timestamp::from_millis(100_000 + card * 10),
                vec![
                    Value::from(format!("card-{card}")),
                    Value::from("m"),
                    Value::from(1.0),
                ],
            )
            .unwrap();
        assert_eq!(
            find(&r, "count(*)").value,
            Value::Int(3),
            "card {card} after scale-out"
        );
    }
}

#[test]
fn abrupt_node_failure_with_replicas_keeps_accuracy() {
    let mut cfg = fresh_config("failover", 3, 1, 3);
    cfg.replication = 2;
    cfg.session_timeout_ms = 1_000;
    let mut cluster = Cluster::new(cfg).unwrap();
    cluster
        .create_stream("payments", payments_schema(), &["cardId"])
        .unwrap();
    cluster
        .register_query("SELECT count(*) FROM payments GROUP BY cardId OVER sliding 1 hours")
        .unwrap();
    for i in 0..6 {
        cluster
            .send(
                "payments",
                Timestamp::from_millis(i * 1000),
                vec![
                    Value::from(format!("card-{}", i % 3)),
                    Value::from("m"),
                    Value::from(1.0),
                ],
            )
            .unwrap();
    }
    // Kill a node without goodbye; advance the clock past the session
    // timeout in steps (survivors heartbeat between steps, the dead node
    // cannot) so the coordinator expels only the failed node.
    cluster.kill_node(1).unwrap();
    for step in 1..=10 {
        cluster.advance_time(step * 500);
        cluster.settle().unwrap();
    }
    // All cards still served, each with its 2 prior events visible.
    for card in 0..3 {
        let r = cluster
            .send(
                "payments",
                Timestamp::from_millis(100_000 + card),
                vec![
                    Value::from(format!("card-{card}")),
                    Value::from("m"),
                    Value::from(1.0),
                ],
            )
            .unwrap();
        assert_eq!(
            find(&r, "count(*)").value,
            Value::Int(3),
            "card {card} after failover"
        );
    }
}

#[test]
fn delayed_window_through_stack() {
    let mut cluster = Cluster::new(fresh_config("delayed", 1, 1, 1)).unwrap();
    cluster
        .create_stream("payments", payments_schema(), &["cardId"])
        .unwrap();
    cluster
        .register_query(
            "SELECT count(*) FROM payments GROUP BY cardId OVER sliding 1 min delayed by 1 min",
        )
        .unwrap();
    let send = |cluster: &mut Cluster, ts: i64| {
        cluster
            .send(
                "payments",
                Timestamp::from_millis(ts),
                vec![Value::from("c"), Value::from("m"), Value::from(1.0)],
            )
            .unwrap()
    };
    let r = send(&mut cluster, 0);
    assert_eq!(find(&r, "count(*)").value, Value::Int(0));
    // 90s later, the delayed window [(90s+1)-60s-60s, (90s+1)-60s) covers
    // the t=0 event.
    let r = send(&mut cluster, 90_000);
    assert_eq!(find(&r, "count(*)").value, Value::Int(1));
}

#[test]
fn window_sizes_coexist_and_agree() {
    let mut cluster = Cluster::new(fresh_config("sizes", 1, 1, 1)).unwrap();
    cluster
        .create_stream("payments", payments_schema(), &["cardId"])
        .unwrap();
    for mins in [1i64, 5, 60] {
        cluster
            .register_query(&format!(
                "SELECT count(*) FROM payments GROUP BY cardId OVER sliding {mins} min"
            ))
            .unwrap();
    }
    let mut last = None;
    for i in 0..10 {
        let r = cluster
            .send(
                "payments",
                Timestamp::from_millis(i * TimeDelta::from_secs(30).as_millis()),
                vec![Value::from("c"), Value::from("m"), Value::from(1.0)],
            )
            .unwrap();
        last = Some(r);
    }
    let last = last.unwrap();
    // At t=270s (i=9): 1-min window holds events at 240s, 270s (+ the 210s
    // event expired at 210+60=270 < 270.001 — check: lower bound
    // 270.001-60=210.001 > 210 → expired). So 2 events.
    let one_min = last
        .aggregations
        .iter()
        .find(|a| a.name.contains("sliding 1min"))
        .unwrap();
    assert_eq!(one_min.value, Value::Int(2));
    // 5-min window: all events within 270.001-300 < 0 → all 10.
    let five_min = last
        .aggregations
        .iter()
        .find(|a| a.name.contains("sliding 5min"))
        .unwrap();
    assert_eq!(five_min.value, Value::Int(10));
    let hour = last
        .aggregations
        .iter()
        .find(|a| a.name.contains("sliding 1h"))
        .unwrap();
    assert_eq!(hour.value, Value::Int(10));
}

#[test]
fn stream_deletion_removes_tasks_and_topics() {
    let mut cluster = Cluster::new(fresh_config("delete", 1, 1, 2)).unwrap();
    cluster
        .create_stream("payments", payments_schema(), &["cardId"])
        .unwrap();
    cluster
        .register_query("SELECT count(*) FROM payments GROUP BY cardId OVER sliding 5 min")
        .unwrap();
    cluster
        .send(
            "payments",
            Timestamp::from_millis(0),
            vec![Value::from("c"), Value::from("m"), Value::from(1.0)],
        )
        .unwrap();
    cluster.delete_stream("payments").unwrap();
    // Sends to the deleted stream fail at the front-end.
    assert!(cluster
        .send(
            "payments",
            Timestamp::from_millis(1_000),
            vec![Value::from("c"), Value::from("m"), Value::from(1.0)],
        )
        .is_err());
    // Deleting twice fails cleanly.
    assert!(cluster.delete_stream("payments").is_err());
    // The stream can be recreated from scratch (counts restart).
    cluster
        .create_stream("payments", payments_schema(), &["cardId"])
        .unwrap();
    cluster
        .register_query("SELECT count(*) FROM payments GROUP BY cardId OVER sliding 5 min")
        .unwrap();
    let r = cluster
        .send(
            "payments",
            Timestamp::from_millis(2_000),
            vec![Value::from("c"), Value::from("m"), Value::from(1.0)],
        )
        .unwrap();
    assert_eq!(find(&r, "count(*)").value, Value::Int(1), "fresh state");
}
