//! The typed client API, end to end: builder↔parser plan equivalence,
//! the full register → send → unregister → send lifecycle with keyed
//! replies and task teardown, and front-end name validation.

use railgun_core::lang::{field, hours, millis, mins, secs, Agg, Query, Window};
use railgun_core::{parse_query, Cluster, ClusterConfig, Plan, QueryId};
use railgun_messaging::TopicPartition;
use railgun_types::{FieldType, Schema, Timestamp, Value};

fn payments_schema() -> Schema {
    Schema::from_pairs(&[
        ("cardId", FieldType::Str),
        ("merchantId", FieldType::Str),
        ("amount", FieldType::Float),
    ])
    .unwrap()
}

fn fresh_config(tag: &str, nodes: u32, units: u32, partitions: u32) -> ClusterConfig {
    let mut cfg = ClusterConfig {
        nodes,
        units_per_node: units,
        partitions,
        ..ClusterConfig::default()
    };
    cfg.data_root = std::env::temp_dir().join(format!(
        "railgun-lifecycle-{}-{tag}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&cfg.data_root).ok();
    cfg
}

/// Builder-constructed queries must compile to plans *structurally
/// identical* to their text-parsed equivalents: equal ASTs in, and a
/// byte-identical Debug rendering of the shared-prefix DAG out (same
/// node ids, same sharing, same resolved field indexes, same refs).
#[test]
fn builder_and_parser_compile_to_identical_plans() {
    let cases: Vec<(Query, &str)> = vec![
        (
            Query::select(Agg::sum("amount"))
                .select(Agg::count())
                .from("payments")
                .group_by(["cardId"])
                .over(Window::sliding(mins(5)))
                .build()
                .unwrap(),
            "SELECT sum(amount), count(*) FROM payments GROUP BY cardId OVER sliding 5 min",
        ),
        (
            Query::select(Agg::avg("amount"))
                .from("payments")
                .filter(field("amount").gt(100).and(field("merchantId").ne_to("m-0")))
                .group_by(["cardId", "merchantId"])
                .over(Window::tumbling(hours(1)))
                .build()
                .unwrap(),
            "SELECT avg(amount) FROM payments \
             WHERE amount > 100 AND merchantId != 'm-0' \
             GROUP BY cardId, merchantId OVER tumbling 1 h",
        ),
        (
            Query::select(Agg::count_distinct("merchantId"))
                .from("payments")
                .group_by(["cardId"])
                .over(Window::infinite())
                .build()
                .unwrap(),
            "SELECT countDistinct(merchantId) FROM payments GROUP BY cardId OVER infinite",
        ),
        (
            Query::select(Agg::min("amount"))
                .select(Agg::max("amount"))
                .from("payments")
                .filter(field("merchantId").is_not_null())
                .group_by(["cardId"])
                .over(Window::sliding(secs(90)).delayed_by(millis(1500)))
                .build()
                .unwrap(),
            "SELECT min(amount), max(amount) FROM payments \
             WHERE merchantId IS NOT NULL \
             GROUP BY cardId OVER sliding 90 s delayed by 1500 ms",
        ),
    ];
    let schema = payments_schema();
    for (built, text) in cases {
        let parsed = parse_query(text).unwrap();
        assert_eq!(built, parsed, "AST equivalence for: {text}");

        // Same registration id on both sides → the plans must be
        // indistinguishable, node for node, ref for ref.
        let id = QueryId(42);
        let mut plan_a = Plan::new();
        let mut plan_b = Plan::new();
        let ha = plan_a.add_query(id, &built, &schema).unwrap();
        let hb = plan_b.add_query(id, &parsed, &schema).unwrap();
        assert_eq!(ha, hb, "handles for: {text}");
        assert_eq!(
            format!("{plan_a:?}"),
            format!("{plan_b:?}"),
            "plan structure for: {text}"
        );

        // And the textual form regenerated from the builder AST parses
        // back to the same AST (the wire carries text).
        assert_eq!(parse_query(&built.to_text().unwrap()).unwrap(), built);
    }
}

/// The acceptance scenario: register two queries, send, unregister one,
/// send again — the unregistered query's aggregations must be absent
/// from keyed replies and its tasks torn down (cursors dropped, state
/// gone), while the surviving query keeps exact values.
#[test]
fn register_send_unregister_send_with_teardown() {
    let mut cluster = Cluster::new(fresh_config("teardown", 1, 1, 2)).unwrap();
    cluster
        .create_stream("payments", payments_schema(), &["cardId"])
        .unwrap();
    let q_window = cluster
        .register(
            &Query::select(Agg::sum("amount"))
                .select(Agg::count())
                .from("payments")
                .group_by(["cardId"])
                .over(Window::sliding(mins(5)))
                .build()
                .unwrap(),
        )
        .unwrap();
    let q_distinct = cluster
        .register_query(
            "SELECT countDistinct(merchantId) FROM payments GROUP BY cardId OVER infinite",
        )
        .unwrap();
    assert_eq!(
        cluster.queries().iter().map(|q| q.id).collect::<Vec<_>>(),
        vec![q_window, q_distinct]
    );

    let send = |cluster: &mut Cluster, merchant: &str, amount: f64, ts: i64| {
        cluster
            .send(
                "payments",
                Timestamp::from_millis(ts),
                vec![
                    Value::from("card-A"),
                    Value::from(merchant),
                    Value::from(amount),
                ],
            )
            .unwrap()
    };

    let r = send(&mut cluster, "m1", 10.0, 1_000);
    assert_eq!(r.get_f64(q_window, 0), Some(10.0), "sum keyed (q, 0)");
    assert_eq!(r.get_i64(q_window, 1), Some(1), "count keyed (q, 1)");
    assert_eq!(r.get_i64(q_distinct, 0), Some(1));
    assert_eq!(r.get(q_window, 2), None, "no third aggregation");
    assert_eq!(r.get(QueryId(0xdead), 0), None, "unknown id");
    let r = send(&mut cluster, "m2", 30.0, 2_000);
    assert_eq!(r.get_f64(q_window, 0), Some(40.0));
    assert_eq!(r.get_i64(q_distinct, 0), Some(2));

    // Count live cursors on the card topic's tasks before teardown.
    let cursors = |cluster: &Cluster| -> usize {
        cluster
            .nodes()
            .iter()
            .flat_map(|n| n.units())
            .flat_map(|u| {
                (0..2).filter_map(move |p| {
                    u.task(&TopicPartition::new("payments--cardId", p))
                        .map(|t| t.iterator_count())
                })
            })
            .sum()
    };
    let cursors_before = cursors(&cluster);
    assert!(cursors_before > 0, "sliding window holds cursors");

    // Unregister the windowed query.
    cluster.unregister_query(q_window).unwrap();
    assert_eq!(
        cluster.queries().iter().map(|q| q.id).collect::<Vec<_>>(),
        vec![q_distinct]
    );

    // Its aggregations are gone from keyed replies; the survivor is exact.
    let r = send(&mut cluster, "m3", 5.0, 3_000);
    assert_eq!(r.get(q_window, 0), None, "unregistered sum absent");
    assert_eq!(r.get(q_window, 1), None, "unregistered count absent");
    assert_eq!(r.get_i64(q_distinct, 0), Some(3), "m1, m2, m3");

    // Task-level teardown: every cursor of the dead sliding window is
    // dropped (the infinite-window query keeps only head cursors).
    let cursors_after = cursors(&cluster);
    assert!(
        cursors_after < cursors_before,
        "cursors must shrink: {cursors_before} -> {cursors_after}"
    );
    for node in cluster.nodes() {
        for unit in node.units() {
            assert_eq!(unit.queries().len(), 1, "unit query registry pruned");
            for p in 0..2 {
                if let Some(task) =
                    unit.task(&TopicPartition::new("payments--cardId", p))
                {
                    assert_eq!(task.query_ids(), vec![q_distinct]);
                    assert_eq!(task.leaf_count(), 1, "only countDistinct left");
                }
            }
        }
    }

    // Unregistering an unknown id errors cleanly at the front-end.
    assert!(cluster.unregister_query(q_window).is_err());
}

/// Unregistering one of two queries sharing a window keeps the shared
/// window (and the other query's values) fully intact.
#[test]
fn shared_window_survives_partial_unregister() {
    let mut cluster = Cluster::new(fresh_config("shared", 1, 1, 1)).unwrap();
    cluster
        .create_stream("payments", payments_schema(), &["cardId"])
        .unwrap();
    let q_sum = cluster
        .register(
            &Query::select(Agg::sum("amount"))
                .from("payments")
                .group_by(["cardId"])
                .over(Window::sliding(mins(5)))
                .build()
                .unwrap(),
        )
        .unwrap();
    let q_count = cluster
        .register(
            &Query::select(Agg::count())
                .from("payments")
                .group_by(["cardId"])
                .over(Window::sliding(mins(5)))
                .build()
                .unwrap(),
        )
        .unwrap();
    for i in 1..=3 {
        cluster
            .send(
                "payments",
                Timestamp::from_millis(i * 1_000),
                vec![Value::from("c"), Value::from("m"), Value::from(2.0)],
            )
            .unwrap();
    }
    cluster.unregister_query(q_sum).unwrap();
    let r = cluster
        .send(
            "payments",
            Timestamp::from_millis(10_000),
            vec![Value::from("c"), Value::from("m"), Value::from(2.0)],
        )
        .unwrap();
    assert_eq!(r.get(q_sum, 0), None);
    assert_eq!(r.get_i64(q_count, 0), Some(4), "shared window kept exact");
}

/// Re-registering after an unregister starts fresh and backfills from
/// the reservoir — the same semantics a brand-new query gets.
#[test]
fn reregistration_backfills_through_the_stack() {
    let mut cluster = Cluster::new(fresh_config("rereg", 1, 1, 1)).unwrap();
    cluster
        .create_stream("payments", payments_schema(), &["cardId"])
        .unwrap();
    let q = Query::select(Agg::count())
        .from("payments")
        .group_by(["cardId"])
        .over(Window::sliding(hours(1)))
        .build()
        .unwrap();
    let first = cluster.register(&q).unwrap();
    for i in 1..=3 {
        cluster
            .send(
                "payments",
                Timestamp::from_millis(i * 1_000),
                vec![Value::from("c"), Value::from("m"), Value::from(1.0)],
            )
            .unwrap();
    }
    cluster.unregister_query(first).unwrap();
    let second = cluster.register(&q).unwrap();
    assert_ne!(first, second, "fresh registration, fresh id");
    let r = cluster
        .send(
            "payments",
            Timestamp::from_millis(10_000),
            vec![Value::from("c"), Value::from("m"), Value::from(1.0)],
        )
        .unwrap();
    assert_eq!(r.get(first, 0), None, "old id stays dead");
    assert_eq!(r.get_i64(second, 0), Some(4), "3 backfilled + 1 new");
}

/// Query lifecycle works identically across the threaded runtime.
#[test]
fn lifecycle_under_threaded_runtime() {
    let mut cfg = fresh_config("threaded", 1, 2, 4);
    cfg.clock = railgun_messaging::BusClock::Auto;
    let mut cluster = Cluster::new(cfg).unwrap();
    cluster
        .create_stream("payments", payments_schema(), &["cardId"])
        .unwrap();
    let q = cluster
        .register(
            &Query::select(Agg::count())
                .from("payments")
                .group_by(["cardId"])
                .over(Window::sliding(hours(1)))
                .build()
                .unwrap(),
        )
        .unwrap();
    cluster.start().unwrap();
    for i in 1..=4 {
        let r = cluster
            .send(
                "payments",
                Timestamp::from_millis(i * 1_000),
                vec![Value::from("c"), Value::from("m"), Value::from(1.0)],
            )
            .unwrap();
        assert_eq!(r.get_i64(q, 0), Some(i));
    }
    // Unregister while the workers are live; the op propagates on their
    // pump. Poll until the teardown is visible in replies.
    cluster.unregister_query(q).unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let r = cluster
            .send(
                "payments",
                Timestamp::from_millis(60_000),
                vec![Value::from("c"), Value::from("m"), Value::from(1.0)],
            )
            .unwrap();
        if r.get(q, 0).is_none() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "teardown never reached the workers"
        );
    }
    cluster.stop().unwrap();
}

/// Satellite: stream and partitioner names that would mis-split
/// `parse_topic_name` are rejected at `create_stream`.
#[test]
fn create_stream_rejects_unsplittable_names() {
    let mut cluster = Cluster::new(fresh_config("names", 1, 1, 1)).unwrap();
    // Empty stream name.
    assert!(cluster
        .create_stream("", payments_schema(), &["cardId"])
        .is_err());
    // `--` in the stream name: `a--b--cardId` would parse as ("a", ...).
    assert!(cluster
        .create_stream("a--b", payments_schema(), &["cardId"])
        .is_err());
    // `--` in a partitioner (schema field) name.
    let tricky = Schema::from_pairs(&[("card--id", FieldType::Str)]).unwrap();
    assert!(cluster.create_stream("s", tricky, &["card--id"]).is_err());
    // Sanity: a valid registration still works afterwards.
    cluster
        .create_stream("payments", payments_schema(), &["cardId"])
        .unwrap();
}
