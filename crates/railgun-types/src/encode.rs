//! Binary encoding primitives shared by all on-disk and wire formats.
//!
//! Every persistent format in Railgun (WAL frames, SSTable blocks, reservoir
//! chunks, messaging records, checkpoints) is built from these primitives:
//! little-endian fixed integers, LEB128 varints, zigzag-encoded signed
//! varints, length-prefixed byte strings, and a CRC-32 (Castagnoli
//! polynomial, software implementation) for corruption detection.
//!
//! Values and events also encode here so that the reservoir chunk format and
//! the messaging layer agree on one representation.

use bytes::{Buf, BufMut, Bytes};

use crate::event::{Event, EventId};
use crate::time::Timestamp;
use crate::value::Value;
use crate::{RailgunError, Result};

// ---------------------------------------------------------------------------
// Varints
// ---------------------------------------------------------------------------

/// Append `v` as a LEB128 varint.
pub fn put_uvarint(buf: &mut impl BufMut, mut v: u64) {
    while v >= 0x80 {
        buf.put_u8((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    buf.put_u8(v as u8);
}

/// Decode a LEB128 varint, advancing `buf`.
pub fn get_uvarint(buf: &mut impl Buf) -> Result<u64> {
    let mut shift = 0u32;
    let mut out = 0u64;
    loop {
        if !buf.has_remaining() {
            return Err(RailgunError::Corruption("truncated varint".into()));
        }
        let b = buf.get_u8();
        if shift == 63 && b > 1 {
            return Err(RailgunError::Corruption("varint overflows u64".into()));
        }
        out |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
        if shift > 63 {
            return Err(RailgunError::Corruption("varint too long".into()));
        }
    }
}

/// Zigzag-map a signed integer to unsigned for varint encoding.
#[inline]
pub const fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub const fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append `v` as a zigzag varint.
pub fn put_ivarint(buf: &mut impl BufMut, v: i64) {
    put_uvarint(buf, zigzag(v));
}

/// Decode a zigzag varint.
pub fn get_ivarint(buf: &mut impl Buf) -> Result<i64> {
    Ok(unzigzag(get_uvarint(buf)?))
}

// ---------------------------------------------------------------------------
// Length-prefixed byte strings
// ---------------------------------------------------------------------------

/// Append a varint length prefix followed by the bytes.
pub fn put_bytes(buf: &mut impl BufMut, b: &[u8]) {
    put_uvarint(buf, b.len() as u64);
    buf.put_slice(b);
}

/// Decode a length-prefixed byte string.
pub fn get_bytes(buf: &mut impl Buf) -> Result<Vec<u8>> {
    let len = get_uvarint(buf)? as usize;
    if buf.remaining() < len {
        return Err(RailgunError::Corruption(format!(
            "byte string of {len} exceeds remaining {}",
            buf.remaining()
        )));
    }
    let mut out = vec![0u8; len];
    buf.copy_to_slice(&mut out);
    Ok(out)
}

/// Decode a length-prefixed UTF-8 string.
pub fn get_string(buf: &mut impl Buf) -> Result<String> {
    String::from_utf8(get_bytes(buf)?)
        .map_err(|_| RailgunError::Corruption("invalid utf-8 in string".into()))
}

// ---------------------------------------------------------------------------
// CRC-32C (Castagnoli), software slicing-by-8 implementation
// ---------------------------------------------------------------------------

const CRC32C_POLY: u32 = 0x82F6_3B78;

/// Eight derived lookup tables: `tables()[0]` is the classic byte-at-a-time
/// table; `tables()[k][b]` advances the CRC of byte `b` through `k` further
/// zero bytes, letting the hot loop fold 8 input bytes per iteration
/// (slicing-by-8). This runs on every chunk append and every chunk load.
fn crc_tables() -> &'static [[u32; 256]; 8] {
    use std::sync::OnceLock;
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (i, slot) in t[0].iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ CRC32C_POLY
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        for k in 1..8 {
            for i in 0..256usize {
                let prev = t[k - 1][i];
                t[k][i] = (prev >> 8) ^ t[0][(prev & 0xff) as usize];
            }
        }
        t
    })
}

/// CRC-32C of `data` (slicing-by-8; identical values to the byte-at-a-time
/// definition — the wire format is pinned by the known-vector tests).
pub fn crc32c(data: &[u8]) -> u32 {
    let t = crc_tables();
    let mut crc = !0u32;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes(c[0..4].try_into().expect("4 bytes")) ^ crc;
        let hi = u32::from_le_bytes(c[4..8].try_into().expect("4 bytes"));
        crc = t[7][(lo & 0xff) as usize]
            ^ t[6][((lo >> 8) & 0xff) as usize]
            ^ t[5][((lo >> 16) & 0xff) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xff) as usize]
            ^ t[2][((hi >> 8) & 0xff) as usize]
            ^ t[1][((hi >> 16) & 0xff) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Value / Event encoding
// ---------------------------------------------------------------------------

const TAG_NULL: u8 = 0;
const TAG_BOOL_FALSE: u8 = 1;
const TAG_BOOL_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_STR: u8 = 5;

/// Append a [`Value`] in tagged binary form.
pub fn put_value(buf: &mut impl BufMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(TAG_NULL),
        Value::Bool(false) => buf.put_u8(TAG_BOOL_FALSE),
        Value::Bool(true) => buf.put_u8(TAG_BOOL_TRUE),
        Value::Int(i) => {
            buf.put_u8(TAG_INT);
            put_ivarint(buf, *i);
        }
        Value::Float(f) => {
            buf.put_u8(TAG_FLOAT);
            buf.put_f64_le(*f);
        }
        Value::Str(s) => {
            buf.put_u8(TAG_STR);
            put_bytes(buf, s.as_bytes());
        }
    }
}

/// Decode a [`Value`] written by [`put_value`].
pub fn get_value(buf: &mut impl Buf) -> Result<Value> {
    if !buf.has_remaining() {
        return Err(RailgunError::Corruption("truncated value".into()));
    }
    match buf.get_u8() {
        TAG_NULL => Ok(Value::Null),
        TAG_BOOL_FALSE => Ok(Value::Bool(false)),
        TAG_BOOL_TRUE => Ok(Value::Bool(true)),
        TAG_INT => Ok(Value::Int(get_ivarint(buf)?)),
        TAG_FLOAT => {
            if buf.remaining() < 8 {
                return Err(RailgunError::Corruption("truncated float".into()));
            }
            Ok(Value::Float(buf.get_f64_le()))
        }
        TAG_STR => Ok(Value::Str(get_string(buf)?)),
        t => Err(RailgunError::Corruption(format!("unknown value tag {t}"))),
    }
}

/// Append an [`Event`] (id, timestamp, values) in binary form.
pub fn put_event(buf: &mut impl BufMut, e: &Event) {
    put_uvarint(buf, e.id.0);
    put_ivarint(buf, e.ts.as_millis());
    put_uvarint(buf, e.values().len() as u64);
    for v in e.values() {
        put_value(buf, v);
    }
}

/// Decode an [`Event`] written by [`put_event`].
pub fn get_event(buf: &mut impl Buf) -> Result<Event> {
    let id = EventId(get_uvarint(buf)?);
    let ts = Timestamp::from_millis(get_ivarint(buf)?);
    let n = get_uvarint(buf)? as usize;
    if n > 1 << 20 {
        return Err(RailgunError::Corruption(format!(
            "implausible field count {n}"
        )));
    }
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(get_value(buf)?);
    }
    Ok(Event::new(id, ts, values))
}

// ---------------------------------------------------------------------------
// Batch frames
// ---------------------------------------------------------------------------

/// Accumulates records encoded **once** into one contiguous buffer, then
/// freezes into a [`BatchFrame`] whose per-record views are zero-copy
/// slices of a single shared allocation.
///
/// This is the serialization half of the batched ingest path: the
/// front-end encodes every event request of a pump tick through one
/// builder, and each downstream hop (bus record, consumer poll, unit
/// decode) moves `Bytes` slices of the frame instead of re-encoding or
/// copying payload bytes.
#[derive(Debug, Default)]
pub struct BatchFrameBuilder {
    buf: Vec<u8>,
    /// Start offset of each record pushed so far.
    starts: Vec<usize>,
}

impl BatchFrameBuilder {
    /// A fresh, empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// A builder pre-sized for `records` records totalling ~`bytes` bytes.
    pub fn with_capacity(records: usize, bytes: usize) -> Self {
        BatchFrameBuilder {
            buf: Vec::with_capacity(bytes),
            starts: Vec::with_capacity(records),
        }
    }

    /// Append one record by encoding it directly into the shared buffer.
    ///
    /// The closure writes the record's bytes; whatever it appends becomes
    /// the record. (An empty record is legal.)
    pub fn push_with(&mut self, encode: impl FnOnce(&mut Vec<u8>)) {
        self.starts.push(self.buf.len());
        encode(&mut self.buf);
    }

    /// Number of records pushed so far.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// True iff no record has been pushed.
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Total encoded bytes so far.
    pub fn bytes(&self) -> usize {
        self.buf.len()
    }

    /// Freeze into a [`BatchFrame`], sharing the buffer via one `Arc`
    /// allocation. The builder is left empty and reusable.
    pub fn finish(&mut self) -> BatchFrame {
        let mut bounds = std::mem::take(&mut self.starts);
        bounds.push(self.buf.len());
        BatchFrame {
            data: Bytes::from(std::mem::take(&mut self.buf)),
            bounds,
        }
    }
}

/// A frozen batch of records backed by **one** shared buffer plus an
/// offset table. [`BatchFrame::slice`] hands out each record as a
/// zero-copy [`Bytes`] view (an `Arc` bump, no byte copying), so a record
/// serialized once at the front-end travels the whole ingest path —
/// possibly fanned out to several topics — without being re-encoded.
#[derive(Debug, Clone)]
pub struct BatchFrame {
    data: Bytes,
    /// `len() + 1` offsets: record `i` spans `bounds[i]..bounds[i + 1]`.
    bounds: Vec<usize>,
}

impl BatchFrame {
    /// Number of records in the frame.
    pub fn len(&self) -> usize {
        self.bounds.len() - 1
    }

    /// True iff the frame holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Record `i` as a zero-copy slice of the shared buffer.
    ///
    /// # Panics
    /// If `i >= len()`.
    pub fn slice(&self, i: usize) -> Bytes {
        self.data.slice(self.bounds[i]..self.bounds[i + 1])
    }

    /// Iterate the records as zero-copy slices.
    pub fn iter(&self) -> impl Iterator<Item = Bytes> + '_ {
        (0..self.len()).map(|i| self.slice(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uvarint_roundtrip_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX / 2, u64::MAX] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            let mut slice = &buf[..];
            assert_eq!(get_uvarint(&mut slice).unwrap(), v);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn ivarint_roundtrip_boundaries() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -123456789] {
            let mut buf = Vec::new();
            put_ivarint(&mut buf, v);
            assert_eq!(get_ivarint(&mut &buf[..]).unwrap(), v);
        }
    }

    #[test]
    fn zigzag_small_negatives_stay_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        assert_eq!(unzigzag(zigzag(i64::MIN)), i64::MIN);
    }

    #[test]
    fn truncated_varint_is_error() {
        let buf = [0x80u8, 0x80];
        assert!(get_uvarint(&mut &buf[..]).is_err());
    }

    #[test]
    fn overlong_varint_is_error() {
        let buf = [0xffu8; 11];
        assert!(get_uvarint(&mut &buf[..]).is_err());
    }

    #[test]
    fn bytes_roundtrip_and_truncation() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, b"hello");
        assert_eq!(get_bytes(&mut &buf[..]).unwrap(), b"hello");
        // claim 5 bytes but provide 2
        let bad = [5u8, b'h', b'i'];
        assert!(get_bytes(&mut &bad[..]).is_err());
    }

    #[test]
    fn crc32c_known_vector() {
        // RFC 3720 test vector: 32 bytes of zero.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        // "123456789"
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        // RFC 3720: 32 bytes of 0xFF.
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        // RFC 3720: bytes 0x00..0x1F ascending.
        let asc: Vec<u8> = (0u8..0x20).collect();
        assert_eq!(crc32c(&asc), 0x46DD_794E);
    }

    #[test]
    fn crc32c_matches_bitwise_reference_at_all_alignments() {
        // Slicing-by-8 must agree with the bit-by-bit definition for every
        // length mod 8 (covers the chunked loop + remainder tail).
        fn reference(data: &[u8]) -> u32 {
            let mut crc = !0u32;
            for &b in data {
                crc ^= u32::from(b);
                for _ in 0..8 {
                    crc = if crc & 1 != 0 {
                        (crc >> 1) ^ 0x82F6_3B78
                    } else {
                        crc >> 1
                    };
                }
            }
            !crc
        }
        let mut x = 0x9E3779B9u32;
        let data: Vec<u8> = (0..257)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x as u8
            })
            .collect();
        for len in 0..data.len() {
            assert_eq!(crc32c(&data[..len]), reference(&data[..len]), "len={len}");
        }
    }

    #[test]
    fn value_roundtrip_all_variants() {
        let vals = vec![
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-42),
            Value::Float(2.5),
            Value::Float(f64::NAN),
            Value::Str("αβγ".into()),
        ];
        let mut buf = Vec::new();
        for v in &vals {
            put_value(&mut buf, v);
        }
        let mut slice = &buf[..];
        for v in &vals {
            let got = get_value(&mut slice).unwrap();
            match (v, &got) {
                (Value::Float(a), Value::Float(b)) if a.is_nan() => assert!(b.is_nan()),
                _ => assert_eq!(v, &got),
            }
        }
    }

    #[test]
    fn event_roundtrip() {
        let e = Event::new(
            EventId(99),
            Timestamp::from_millis(-5),
            vec![Value::Str("card".into()), Value::Float(1.25), Value::Null],
        );
        let mut buf = Vec::new();
        put_event(&mut buf, &e);
        let got = get_event(&mut &buf[..]).unwrap();
        assert_eq!(e, got);
    }

    #[test]
    fn unknown_tag_is_corruption() {
        let buf = [99u8];
        assert!(get_value(&mut &buf[..]).is_err());
    }

    #[test]
    fn batch_frame_roundtrips_records_zero_copy() {
        let mut b = BatchFrameBuilder::with_capacity(3, 64);
        let events: Vec<Event> = (0..3)
            .map(|i| {
                Event::new(
                    EventId(i),
                    Timestamp::from_millis(i as i64 * 10),
                    vec![Value::Int(i as i64), Value::Str(format!("e{i}"))],
                )
            })
            .collect();
        for e in &events {
            b.push_with(|buf| put_event(buf, e));
        }
        assert_eq!(b.len(), 3);
        assert!(b.bytes() > 0);
        let frame = b.finish();
        assert_eq!(frame.len(), 3);
        assert!(!frame.is_empty());
        for (i, e) in events.iter().enumerate() {
            let s = frame.slice(i);
            assert_eq!(&get_event(&mut &s[..]).unwrap(), e);
        }
        // iter() agrees with slice().
        let via_iter: Vec<Vec<u8>> = frame.iter().map(|s| s.to_vec()).collect();
        for (i, v) in via_iter.iter().enumerate() {
            assert_eq!(v.as_slice(), frame.slice(i).as_ref());
        }
        // The builder is drained and reusable.
        assert!(b.is_empty());
        b.push_with(|buf| buf.put_u8(9));
        assert_eq!(b.finish().slice(0).as_ref(), &[9]);
    }

    #[test]
    fn batch_frame_empty_and_empty_records() {
        let mut b = BatchFrameBuilder::new();
        let empty = b.finish();
        assert_eq!(empty.len(), 0);
        assert!(empty.is_empty());

        b.push_with(|_| {}); // zero-length record
        b.push_with(|buf| buf.put_slice(b"xy"));
        b.push_with(|_| {});
        let f = b.finish();
        assert_eq!(f.len(), 3);
        assert!(f.slice(0).is_empty());
        assert_eq!(f.slice(1).as_ref(), b"xy");
        assert!(f.slice(2).is_empty());
    }
}
