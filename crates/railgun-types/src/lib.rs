//! Shared data types for the Railgun streaming engine.
//!
//! This crate defines the vocabulary every other Railgun crate speaks:
//! [`Event`]s flowing through streams, the dynamically-typed [`Value`]s
//! carried by their fields, [`Schema`]s describing field layout (with
//! versioning for schema evolution, see `railgun-reservoir`'s schema
//! registry), millisecond-resolution [`Timestamp`]s / [`TimeDelta`]s used by
//! windows, and the common [`RailgunError`] type.
//!
//! It also hosts the shared observability vocabulary: the log-bucketed
//! [`Histogram`] (moved here from `railgun-sim`) and the near-zero-cost
//! [`metrics`] recording layer ([`Recorder`]/[`Counter`]) the engine's
//! telemetry plane records stage latencies through.
//!
//! Everything here is deliberately small and dependency-free so that the
//! storage, messaging, and engine crates can share it without coupling.

pub mod encode;
pub mod error;
pub mod event;
pub mod hash;
pub mod histogram;
pub mod metrics;
pub mod schema;
pub mod time;
pub mod value;

pub use encode::{BatchFrame, BatchFrameBuilder};
pub use error::{RailgunError, Result};
pub use hash::{FastHashMap, FastHashSet};
pub use event::{Event, EventId};
pub use histogram::Histogram;
pub use metrics::{AtomicHistogram, Counter, LatencyLadder, Recorder};
pub use schema::{FieldDef, FieldType, Schema, SchemaId};
pub use time::{TimeDelta, Timestamp};
pub use value::Value;
