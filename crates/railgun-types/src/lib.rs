//! Shared data types for the Railgun streaming engine.
//!
//! This crate defines the vocabulary every other Railgun crate speaks:
//! [`Event`]s flowing through streams, the dynamically-typed [`Value`]s
//! carried by their fields, [`Schema`]s describing field layout (with
//! versioning for schema evolution, see `railgun-reservoir`'s schema
//! registry), millisecond-resolution [`Timestamp`]s / [`TimeDelta`]s used by
//! windows, and the common [`RailgunError`] type.
//!
//! Everything here is deliberately small and dependency-free so that the
//! storage, messaging, and engine crates can share it without coupling.

pub mod encode;
pub mod error;
pub mod event;
pub mod hash;
pub mod schema;
pub mod time;
pub mod value;

pub use error::{RailgunError, Result};
pub use hash::{FastHashMap, FastHashSet};
pub use event::{Event, EventId};
pub use schema::{FieldDef, FieldType, Schema, SchemaId};
pub use time::{TimeDelta, Timestamp};
pub use value::Value;
