//! HDR-style latency histograms.
//!
//! Log-bucketed histogram with bounded relative error (~1% by default),
//! good for the 0.1 ms – 100 s range the paper's figures span. Latencies
//! are recorded in microseconds; percentile extraction follows the same
//! cumulative-count walk HdrHistogram uses.
//!
//! Originally part of `railgun-sim`, the histogram moved here so the real
//! engine's telemetry plane (see [`crate::metrics`]) and the simulated
//! testbed share one percentile vocabulary. `railgun_sim::Histogram`
//! remains as a compatibility re-export.

/// A log-linear histogram over `u64` values (microseconds by convention).
#[derive(Debug, Clone)]
pub struct Histogram {
    /// `sub_bucket_bits` linear sub-buckets per power-of-two bucket.
    sub_bucket_bits: u32,
    counts: Vec<u64>,
    total: u64,
    max: u64,
    min: u64,
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new(7) // 128 sub-buckets ≈ 0.8% relative error
    }
}

impl Histogram {
    /// Create a histogram with `2^sub_bucket_bits` linear sub-buckets per
    /// octave (precision/size trade-off).
    pub fn new(sub_bucket_bits: u32) -> Self {
        let sub_bucket_bits = sub_bucket_bits.clamp(2, 12);
        let buckets = 64 - sub_bucket_bits; // octaves above the linear range
        let size = ((buckets as usize) + 1) << sub_bucket_bits;
        Histogram {
            sub_bucket_bits,
            counts: vec![0; size],
            total: 0,
            max: 0,
            min: u64::MAX,
            sum: 0,
        }
    }

    /// Bucket index for `value` under a `sub_bucket_bits` layout — shared
    /// with [`crate::metrics::AtomicHistogram`] so both record into
    /// identical bucket positions.
    #[inline]
    pub(crate) fn bucket_index(sub_bucket_bits: u32, value: u64) -> usize {
        let bits = sub_bucket_bits;
        let sub_count = 1u64 << bits;
        if value < sub_count {
            return value as usize;
        }
        // value in [2^e, 2^{e+1}), e >= bits; mantissa m in
        // [sub_count, 2*sub_count) after shifting.
        let e = 63 - value.leading_zeros();
        let m = value >> (e - bits);
        (((e - bits + 1) as usize) << bits) + (m - sub_count) as usize
    }

    /// The (clamped sub-bucket bits, bucket count) of this histogram —
    /// lets [`crate::metrics::AtomicHistogram`] mirror the exact layout.
    pub(crate) fn layout(&self) -> (u32, usize) {
        (self.sub_bucket_bits, self.counts.len())
    }

    /// Rebuild a histogram from raw bucket counts (an
    /// [`crate::metrics::AtomicHistogram`] snapshot). `total` is derived
    /// from the counts; `min`/`max`/`sum` are taken as given, except
    /// that an inverted `min > max` pair with non-zero counts — a
    /// snapshot racing a concurrent record between its count and its
    /// min/max updates — is clamped to `min == max` so `percentile`'s
    /// `[min, max]` clamp cannot invert into garbage (`u64::MAX`).
    pub(crate) fn from_raw_parts(
        sub_bucket_bits: u32,
        counts: Vec<u64>,
        max: u64,
        min: u64,
        sum: u128,
    ) -> Self {
        let total: u64 = counts.iter().sum();
        let min = if total > 0 { min.min(max) } else { min };
        Histogram {
            sub_bucket_bits,
            counts,
            total,
            max,
            min,
            sum,
        }
    }

    #[inline]
    fn index_of(&self, value: u64) -> usize {
        Self::bucket_index(self.sub_bucket_bits, value)
    }

    /// Representative (upper-bound) value of bucket `idx`.
    fn value_of(&self, idx: usize) -> u64 {
        let bits = self.sub_bucket_bits;
        let sub_count = 1u64 << bits;
        if (idx as u64) < sub_count {
            return idx as u64;
        }
        let block = (idx >> bits) as u32; // >= 1
        let rem = idx as u64 & (sub_count - 1);
        let shift = block - 1;
        let m = rem + sub_count;
        (m << shift) + (1u64 << shift) - 1
    }

    /// Record one value.
    pub fn record(&mut self, value: u64) {
        let idx = self.index_of(value).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.total += 1;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
        self.sum += u128::from(value);
    }

    /// Record `n` occurrences of one value.
    pub fn record_n(&mut self, value: u64, n: u64) {
        let idx = self.index_of(value).min(self.counts.len() - 1);
        self.counts[idx] += n;
        self.total += n;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
        self.sum += u128::from(value) * u128::from(n);
    }

    /// Value at quantile `q` in [0, 1].
    pub fn percentile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            return self.max;
        }
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return self.value_of(idx).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.max
        }
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Arithmetic mean of recorded values.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Merge another histogram into this one (same configuration).
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.sub_bucket_bits, other.sub_bucket_bits,
            "histograms must share configuration"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
        self.sum += other.sum;
    }

    /// The paper's standard percentile ladder (Figures 8/9 x-axis).
    pub const PAPER_PERCENTILES: [f64; 10] = [
        0.0, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999, 0.9999, 0.99999, 1.0,
    ];

    /// Values at [`Histogram::PAPER_PERCENTILES`].
    pub fn paper_series(&self) -> Vec<u64> {
        Self::PAPER_PERCENTILES
            .iter()
            .map(|&q| if q == 0.0 { self.min() } else { self.percentile(q) })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn exact_for_small_values() {
        let mut h = Histogram::default();
        for v in 0..100u64 {
            h.record(v);
        }
        // p50 of 0..99 = the 50th smallest value (1-indexed) = 49.
        assert_eq!(h.percentile(0.5), 49);
        assert_eq!(h.percentile(1.0), 99);
        assert_eq!(h.min(), 0);
        assert_eq!(h.count(), 100);
    }

    #[test]
    fn bounded_relative_error_for_large_values() {
        let mut h = Histogram::default();
        for i in 0..10_000u64 {
            h.record(1_000_000 + i * 100); // 1.0s .. 2.0s in µs
        }
        let p50 = h.percentile(0.5) as f64;
        let expect = 1_500_000.0;
        assert!(
            (p50 - expect).abs() / expect < 0.02,
            "p50 {p50} vs {expect}"
        );
        let p999 = h.percentile(0.999) as f64;
        let expect = 1_999_000.0;
        assert!(
            (p999 - expect).abs() / expect < 0.02,
            "p999 {p999} vs {expect}"
        );
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = Histogram::default();
        let mut x = 42u64;
        for _ in 0..50_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            h.record(x % 10_000_000);
        }
        let mut prev = 0;
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 0.9999, 1.0] {
            let v = h.percentile(q);
            assert!(v >= prev, "p{q} = {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn mean_and_sum() {
        let mut h = Histogram::default();
        h.record(10);
        h.record(20);
        h.record(30);
        assert_eq!(h.mean(), 20.0);
    }

    #[test]
    fn record_n_weights() {
        let mut h = Histogram::default();
        h.record_n(5, 99);
        h.record_n(1_000, 1);
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile(0.5), 5);
        assert!(h.percentile(0.999) >= 990);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for v in 0..50u64 {
            a.record(v);
        }
        for v in 50..100u64 {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 100);
        assert_eq!(a.percentile(0.5), 49);
        assert_eq!(a.max(), 99);
    }

    #[test]
    fn paper_series_has_ten_points() {
        let mut h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v * 100);
        }
        let series = h.paper_series();
        assert_eq!(series.len(), 10);
        assert!(series.windows(2).all(|w| w[0] <= w[1]));
    }
}
