//! Stream events.
//!
//! An [`Event`] is one element of an unbounded stream: a unique id (used for
//! at-least-once deduplication, paper §3.3), a millisecond timestamp (used
//! for window membership), and the positional field values described by the
//! stream's schema.

use std::sync::Arc;

use crate::time::Timestamp;
use crate::value::Value;

/// Globally unique event identifier.
///
/// The front-end assigns ids; the reservoir deduplicates on them against
/// chunks still in memory, which combined with the messaging layer's
/// at-least-once delivery yields exactly-once processing (paper §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u64);

/// One event of a data stream.
///
/// Field values are stored positionally, in the order declared by the
/// stream's [`crate::Schema`]. The value vector is behind an `Arc` because
/// events are fanned out to one topic per partitioner (paper §4) and
/// replicated to replica tasks, and cloning must stay cheap.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Unique id for deduplication.
    pub id: EventId,
    /// Event timestamp; windows slide on this.
    pub ts: Timestamp,
    /// Field values in schema order.
    values: Arc<[Value]>,
}

impl Event {
    /// Build an event from its parts.
    pub fn new(id: EventId, ts: Timestamp, values: Vec<Value>) -> Self {
        Event {
            id,
            ts,
            values: values.into(),
        }
    }

    /// Field values in schema order.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at field index `idx`, if in range.
    #[inline]
    pub fn value(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Approximate memory footprint of the event, used by the reservoir for
    /// chunk sizing.
    pub fn heap_size(&self) -> usize {
        std::mem::size_of::<Event>()
            + self.values.iter().map(Value::heap_size).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cheap_clone_shares_values() {
        let e = Event::new(
            EventId(1),
            Timestamp::from_millis(5),
            vec![Value::Int(1), Value::Str("card-1".into())],
        );
        let f = e.clone();
        assert!(Arc::ptr_eq(&e.values, &f.values));
        assert_eq!(e, f);
    }

    #[test]
    fn value_access() {
        let e = Event::new(EventId(7), Timestamp::from_millis(0), vec![Value::Float(2.5)]);
        assert_eq!(e.value(0), Some(&Value::Float(2.5)));
        assert_eq!(e.value(1), None);
        assert_eq!(e.values().len(), 1);
    }

    #[test]
    fn heap_size_counts_strings() {
        let small = Event::new(EventId(0), Timestamp::from_millis(0), vec![Value::Int(1)]);
        let big = Event::new(
            EventId(0),
            Timestamp::from_millis(0),
            vec![Value::Str("x".repeat(1024))],
        );
        assert!(big.heap_size() > small.heap_size() + 1000);
    }
}
