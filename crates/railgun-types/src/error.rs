//! Error types shared across Railgun crates.

use std::fmt;
use std::io;

/// Result alias used throughout Railgun.
pub type Result<T> = std::result::Result<T, RailgunError>;

/// The error type shared by all Railgun crates.
#[derive(Debug)]
pub enum RailgunError {
    /// Schema definition or validation failure.
    Schema(String),
    /// On-disk or wire format corruption (bad magic, CRC mismatch, ...).
    Corruption(String),
    /// Underlying I/O failure.
    Io(io::Error),
    /// Query language parse failure.
    Parse(String),
    /// Filter / expression evaluation failure.
    Expr(String),
    /// Storage-layer failure (state store, reservoir).
    Storage(String),
    /// Messaging-layer failure (unknown topic, closed consumer, ...).
    Messaging(String),
    /// Engine-level configuration or lifecycle failure.
    Engine(String),
    /// Requested entity does not exist.
    NotFound(String),
    /// Invalid argument provided by the caller.
    InvalidArgument(String),
    /// The caller exceeded a bounded in-flight capacity and must retry
    /// after collecting outstanding work (front-end backpressure, §3.1).
    Backpressure(String),
    /// The node that owned an in-flight request has left the cluster
    /// (killed, drained, or decommissioned). The request will never be
    /// answered by that front-end — resend through a surviving node
    /// instead of waiting out a collect timeout.
    NodeLost(String),
}

impl fmt::Display for RailgunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RailgunError::Schema(m) => write!(f, "schema error: {m}"),
            RailgunError::Corruption(m) => write!(f, "corruption: {m}"),
            RailgunError::Io(e) => write!(f, "io error: {e}"),
            RailgunError::Parse(m) => write!(f, "parse error: {m}"),
            RailgunError::Expr(m) => write!(f, "expression error: {m}"),
            RailgunError::Storage(m) => write!(f, "storage error: {m}"),
            RailgunError::Messaging(m) => write!(f, "messaging error: {m}"),
            RailgunError::Engine(m) => write!(f, "engine error: {m}"),
            RailgunError::NotFound(m) => write!(f, "not found: {m}"),
            RailgunError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            RailgunError::Backpressure(m) => write!(f, "backpressure: {m}"),
            RailgunError::NodeLost(m) => write!(f, "node lost: {m}"),
        }
    }
}

impl std::error::Error for RailgunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RailgunError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for RailgunError {
    fn from(e: io::Error) -> Self {
        RailgunError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = RailgunError::Schema("bad".into());
        assert_eq!(e.to_string(), "schema error: bad");
        let e = RailgunError::Messaging("no topic".into());
        assert!(e.to_string().contains("no topic"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        use std::error::Error;
        let e: RailgunError = io::Error::other("disk gone").into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("disk gone"));
    }
}
