//! Millisecond-resolution event time.
//!
//! The paper's windows are time-based with millisecond-level latency targets,
//! so all of Railgun works in integer milliseconds. [`Timestamp`] is a point
//! on the event-time axis; [`TimeDelta`] is a span (window size, hop size,
//! delay offset). Both are thin wrappers over `i64` so they are free to copy
//! and order.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in event time, in milliseconds since an arbitrary epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub i64);

/// A span of event time, in milliseconds. Window sizes, hops, and delays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeDelta(pub i64);

impl Timestamp {
    /// The smallest representable timestamp.
    pub const MIN: Timestamp = Timestamp(i64::MIN);
    /// The largest representable timestamp.
    pub const MAX: Timestamp = Timestamp(i64::MAX);

    /// Construct from raw milliseconds.
    #[inline]
    pub const fn from_millis(ms: i64) -> Self {
        Timestamp(ms)
    }

    /// Raw milliseconds since epoch.
    #[inline]
    pub const fn as_millis(self) -> i64 {
        self.0
    }

    /// Saturating subtraction of a delta (window lower bounds near MIN).
    #[inline]
    pub fn saturating_sub(self, d: TimeDelta) -> Timestamp {
        Timestamp(self.0.saturating_sub(d.0))
    }

    /// Saturating addition of a delta.
    #[inline]
    pub fn saturating_add(self, d: TimeDelta) -> Timestamp {
        Timestamp(self.0.saturating_add(d.0))
    }

    /// Floor this timestamp to a multiple of `step` (hop-boundary alignment).
    ///
    /// Used by the hopping-window baseline to find pane boundaries. `step`
    /// must be positive. Handles negative timestamps with floored division.
    #[inline]
    pub fn align_down(self, step: TimeDelta) -> Timestamp {
        debug_assert!(step.0 > 0, "align_down requires a positive step");
        Timestamp(self.0.div_euclid(step.0) * step.0)
    }
}

impl TimeDelta {
    /// Zero-length span.
    pub const ZERO: TimeDelta = TimeDelta(0);

    /// Construct from raw milliseconds.
    #[inline]
    pub const fn from_millis(ms: i64) -> Self {
        TimeDelta(ms)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: i64) -> Self {
        TimeDelta(s * 1_000)
    }

    /// Construct from whole minutes.
    #[inline]
    pub const fn from_minutes(m: i64) -> Self {
        TimeDelta(m * 60_000)
    }

    /// Construct from whole hours.
    #[inline]
    pub const fn from_hours(h: i64) -> Self {
        TimeDelta(h * 3_600_000)
    }

    /// Construct from whole days.
    #[inline]
    pub const fn from_days(d: i64) -> Self {
        TimeDelta(d * 86_400_000)
    }

    /// Raw milliseconds.
    #[inline]
    pub const fn as_millis(self) -> i64 {
        self.0
    }

    /// Span expressed in (truncated) whole seconds.
    #[inline]
    pub const fn as_secs(self) -> i64 {
        self.0 / 1_000
    }

    /// True iff the span is strictly positive.
    #[inline]
    pub const fn is_positive(self) -> bool {
        self.0 > 0
    }
}

impl Add<TimeDelta> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn add(self, rhs: TimeDelta) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl Sub<TimeDelta> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn sub(self, rhs: TimeDelta) -> Timestamp {
        Timestamp(self.0 - rhs.0)
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = TimeDelta;
    #[inline]
    fn sub(self, rhs: Timestamp) -> TimeDelta {
        TimeDelta(self.0 - rhs.0)
    }
}

impl AddAssign<TimeDelta> for Timestamp {
    #[inline]
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl SubAssign<TimeDelta> for Timestamp {
    #[inline]
    fn sub_assign(&mut self, rhs: TimeDelta) {
        self.0 -= rhs.0;
    }
}

impl Add for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 + rhs.0)
    }
}

impl Sub for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn sub(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 - rhs.0)
    }
}

impl Mul<i64> for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn mul(self, rhs: i64) -> TimeDelta {
        TimeDelta(self.0 * rhs)
    }
}

impl Div<TimeDelta> for TimeDelta {
    type Output = i64;
    #[inline]
    fn div(self, rhs: TimeDelta) -> i64 {
        self.0 / rhs.0
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0;
        if ms % 86_400_000 == 0 && ms != 0 {
            write!(f, "{}d", ms / 86_400_000)
        } else if ms % 3_600_000 == 0 && ms != 0 {
            write!(f, "{}h", ms / 3_600_000)
        } else if ms % 60_000 == 0 && ms != 0 {
            write!(f, "{}min", ms / 60_000)
        } else if ms % 1_000 == 0 && ms != 0 {
            write!(f, "{}s", ms / 1_000)
        } else {
            write!(f, "{}ms", ms)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = Timestamp::from_millis(10_000);
        let d = TimeDelta::from_secs(3);
        assert_eq!(t + d, Timestamp::from_millis(13_000));
        assert_eq!((t + d) - d, t);
        assert_eq!(t + d - t, d);
    }

    #[test]
    fn delta_constructors_agree() {
        assert_eq!(TimeDelta::from_minutes(5), TimeDelta::from_secs(300));
        assert_eq!(TimeDelta::from_hours(2), TimeDelta::from_minutes(120));
        assert_eq!(TimeDelta::from_days(1), TimeDelta::from_hours(24));
    }

    #[test]
    fn align_down_floors_to_step() {
        let step = TimeDelta::from_secs(60);
        assert_eq!(
            Timestamp::from_millis(61_000).align_down(step),
            Timestamp::from_millis(60_000)
        );
        assert_eq!(
            Timestamp::from_millis(60_000).align_down(step),
            Timestamp::from_millis(60_000)
        );
        assert_eq!(
            Timestamp::from_millis(59_999).align_down(step),
            Timestamp::from_millis(0)
        );
    }

    #[test]
    fn align_down_handles_negative_timestamps() {
        let step = TimeDelta::from_secs(10);
        assert_eq!(
            Timestamp::from_millis(-1).align_down(step),
            Timestamp::from_millis(-10_000)
        );
    }

    #[test]
    fn saturating_ops_do_not_overflow() {
        assert_eq!(
            Timestamp::MIN.saturating_sub(TimeDelta::from_days(7)),
            Timestamp::MIN
        );
        assert_eq!(
            Timestamp::MAX.saturating_add(TimeDelta::from_days(7)),
            Timestamp::MAX
        );
    }

    #[test]
    fn display_picks_coarsest_unit() {
        assert_eq!(TimeDelta::from_days(7).to_string(), "7d");
        assert_eq!(TimeDelta::from_hours(3).to_string(), "3h");
        assert_eq!(TimeDelta::from_minutes(5).to_string(), "5min");
        assert_eq!(TimeDelta::from_secs(15).to_string(), "15s");
        assert_eq!(TimeDelta::from_millis(250).to_string(), "250ms");
    }

    #[test]
    fn delta_division_counts_panes() {
        // 60-min window with 5-min hop => 12 active panes (paper §2.2).
        let ws = TimeDelta::from_minutes(60);
        let hop = TimeDelta::from_minutes(5);
        assert_eq!(ws / hop, 12);
        // 1-second hop => 3600 panes.
        assert_eq!(ws / TimeDelta::from_secs(1), 3600);
    }
}
