//! Event schemas.
//!
//! A [`Schema`] declares the ordered list of fields an event carries. The
//! reservoir persists chunks tagged with a [`SchemaId`] so old chunks can be
//! deserialized after the schema evolves (paper §4.1.1, schema registry).

use crate::value::Value;
use crate::{RailgunError, Result};

/// Identifier of a registered schema version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SchemaId(pub u32);

/// Declared type of a schema field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldType {
    Bool,
    Int,
    Float,
    Str,
}

impl FieldType {
    /// True iff `v` is NULL or matches this declared type.
    pub fn admits(&self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (FieldType::Bool, Value::Bool(_))
                | (FieldType::Int, Value::Int(_))
                | (FieldType::Float, Value::Float(_))
                | (FieldType::Str, Value::Str(_))
        )
    }
}

/// One named, typed field in a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    pub name: String,
    pub ty: FieldType,
}

impl FieldDef {
    pub fn new(name: impl Into<String>, ty: FieldType) -> Self {
        FieldDef { name: name.into(), ty }
    }
}

/// An ordered set of named, typed fields.
///
/// Field order is significant: events store values positionally and the
/// chunk format encodes columns in schema order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<FieldDef>,
}

impl Schema {
    /// Build a schema from field definitions. Field names must be unique.
    pub fn new(fields: Vec<FieldDef>) -> Result<Self> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(RailgunError::Schema(format!(
                    "duplicate field name `{}`",
                    f.name
                )));
            }
        }
        Ok(Schema { fields })
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, FieldType)]) -> Result<Self> {
        Schema::new(
            pairs
                .iter()
                .map(|(n, t)| FieldDef::new(*n, *t))
                .collect(),
        )
    }

    /// The ordered field definitions.
    #[inline]
    pub fn fields(&self) -> &[FieldDef] {
        &self.fields
    }

    /// Number of fields.
    #[inline]
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True iff the schema has no fields.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the field named `name`, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Index of the field named `name`, or a schema error naming the field.
    pub fn require(&self, name: &str) -> Result<usize> {
        self.index_of(name)
            .ok_or_else(|| RailgunError::Schema(format!("unknown field `{name}`")))
    }

    /// Validate that `values` is positionally compatible with this schema.
    pub fn check_values(&self, values: &[Value]) -> Result<()> {
        if values.len() != self.fields.len() {
            return Err(RailgunError::Schema(format!(
                "expected {} values, got {}",
                self.fields.len(),
                values.len()
            )));
        }
        for (f, v) in self.fields.iter().zip(values) {
            if !f.ty.admits(v) {
                return Err(RailgunError::Schema(format!(
                    "field `{}` declared {:?} but value is {v:?}",
                    f.name, f.ty
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payments() -> Schema {
        Schema::from_pairs(&[
            ("cardId", FieldType::Str),
            ("merchantId", FieldType::Str),
            ("amount", FieldType::Float),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_duplicate_names() {
        let err = Schema::from_pairs(&[("a", FieldType::Int), ("a", FieldType::Str)]);
        assert!(err.is_err());
    }

    #[test]
    fn index_lookup() {
        let s = payments();
        assert_eq!(s.index_of("amount"), Some(2));
        assert_eq!(s.index_of("nope"), None);
        assert!(s.require("cardId").is_ok());
        assert!(s.require("nope").is_err());
    }

    #[test]
    fn value_validation() {
        let s = payments();
        assert!(s
            .check_values(&[
                Value::Str("c1".into()),
                Value::Str("m1".into()),
                Value::Float(9.5)
            ])
            .is_ok());
        // wrong arity
        assert!(s.check_values(&[Value::Null]).is_err());
        // wrong type
        assert!(s
            .check_values(&[Value::Int(1), Value::Str("m".into()), Value::Float(1.0)])
            .is_err());
        // NULL admitted anywhere
        assert!(s
            .check_values(&[Value::Null, Value::Null, Value::Null])
            .is_ok());
    }
}
