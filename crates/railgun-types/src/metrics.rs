//! Near-zero-cost latency recording for the engine's telemetry plane.
//!
//! The real engine (front-end, processor units, reservoir, state store)
//! records stage latencies into [`AtomicHistogram`]s through cheap
//! [`Recorder`] handles. The design goals, in order:
//!
//! 1. **Off is free.** A disabled recorder holds no histogram; its
//!    [`Recorder::start`] returns `None` without reading the clock and
//!    [`Recorder::finish`] is a no-op. The hot paths measured by
//!    `BENCH_hotpath.json` are unaffected when telemetry is off.
//! 2. **On is cheap and lock-free.** Recording is one clock read plus a
//!    handful of relaxed atomic operations on the stage's histogram.
//!    Writers never block each other or snapshot readers.
//! 3. **Snapshots are plain data.** [`AtomicHistogram::snapshot`] freezes
//!    the counts into an ordinary [`Histogram`], which percentile
//!    extraction and merging already handle.
//!
//! Counters ([`Counter`]) follow the same pattern for plain event counts
//! (e.g. the reservoir's cold-drain chunk misses).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::histogram::Histogram;

/// A concurrently-writable log-bucketed histogram.
///
/// Same bucketing as [`Histogram`] (to which it snapshots), but every
/// field is atomic: any number of threads may [`AtomicHistogram::record`]
/// while others snapshot. All operations use relaxed ordering — counts
/// are statistics, not synchronization.
pub struct AtomicHistogram {
    sub_bucket_bits: u32,
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    max: AtomicU64,
    min: AtomicU64,
    sum: AtomicU64,
}

impl std::fmt::Debug for AtomicHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicHistogram")
            .field("count", &self.total.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram::new(7) // mirror Histogram::default(): ~0.8% error
    }
}

impl AtomicHistogram {
    /// Create a histogram with `2^sub_bucket_bits` linear sub-buckets per
    /// octave (same layout as [`Histogram::new`]).
    pub fn new(sub_bucket_bits: u32) -> Self {
        // Reuse Histogram's clamping and sizing so snapshots always merge.
        let template = Histogram::new(sub_bucket_bits);
        let (bits, size) = template.layout();
        let mut counts = Vec::with_capacity(size);
        counts.resize_with(size, || AtomicU64::new(0));
        AtomicHistogram {
            sub_bucket_bits: bits,
            counts,
            total: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one value (microseconds by convention). Lock-free.
    pub fn record(&self, value: u64) {
        let idx = Histogram::bucket_index(self.sub_bucket_bits, value)
            .min(self.counts.len() - 1);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Freeze the current counts into a plain [`Histogram`].
    ///
    /// Concurrent recording keeps running; a snapshot taken mid-record
    /// may be off by the in-flight sample (counts are read
    /// bucket-by-bucket). A record caught between its count and its
    /// min/max updates can leave the snapshot with an inverted
    /// `min > max` pair; the rebuild clamps that to `min == max` so
    /// percentiles degrade by at most the in-flight sample instead of
    /// inverting into `u64::MAX`.
    pub fn snapshot(&self) -> Histogram {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        Histogram::from_raw_parts(
            self.sub_bucket_bits,
            counts,
            self.max.load(Ordering::Relaxed),
            self.min.load(Ordering::Relaxed),
            u128::from(self.sum.load(Ordering::Relaxed)),
        )
    }
}

/// A cheap, cloneable handle for recording durations into a shared
/// [`AtomicHistogram`] — or into nothing at all.
///
/// The engine passes recorders down through configuration structs
/// (`ReservoirConfig`, `DbOptions`, unit configs); the default
/// ([`Recorder::disabled`]) records nothing and costs nothing:
///
/// ```
/// use railgun_types::metrics::Recorder;
///
/// let off = Recorder::disabled();
/// let t = off.start();          // None — the clock is never read
/// off.finish(t);                // no-op
/// assert!(!off.is_enabled());
///
/// let on = Recorder::enabled();
/// let t = on.start();
/// on.finish(t);                 // one sample recorded
/// assert_eq!(on.snapshot().unwrap().count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Recorder(Option<Arc<AtomicHistogram>>);

impl Recorder {
    /// A recorder that records nothing (the default).
    pub fn disabled() -> Self {
        Recorder(None)
    }

    /// A recorder backed by a fresh default-precision histogram.
    pub fn enabled() -> Self {
        Recorder(Some(Arc::new(AtomicHistogram::default())))
    }

    /// A recorder backed by an existing shared histogram.
    pub fn shared(hist: Arc<AtomicHistogram>) -> Self {
        Recorder(Some(hist))
    }

    /// True iff samples are being collected.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Begin timing a stage. Returns `None` — without touching the clock —
    /// when disabled; pass the result to [`Recorder::finish`].
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.0.is_some() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Finish timing a stage started with [`Recorder::start`], recording
    /// the elapsed microseconds (when enabled).
    #[inline]
    pub fn finish(&self, started: Option<Instant>) {
        if let (Some(hist), Some(t)) = (&self.0, started) {
            hist.record(t.elapsed().as_micros() as u64);
        }
    }

    /// Record an already-measured value in microseconds (when enabled).
    #[inline]
    pub fn record(&self, micros: u64) {
        if let Some(hist) = &self.0 {
            hist.record(micros);
        }
    }

    /// Snapshot the backing histogram, if enabled.
    pub fn snapshot(&self) -> Option<Histogram> {
        self.0.as_ref().map(|h| h.snapshot())
    }
}

/// A cheap, cloneable, optionally-disabled event counter — the counting
/// sibling of [`Recorder`], used for plain occurrence counts such as the
/// reservoir's cold-drain chunk misses.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A counter that counts nothing (the default).
    pub fn disabled() -> Self {
        Counter(None)
    }

    /// A counter starting at zero.
    pub fn enabled() -> Self {
        Counter(Some(Arc::new(AtomicU64::new(0))))
    }

    /// True iff counts are being collected.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Add `n` to the counter (when enabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increment the counter by one (when enabled).
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current count (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

/// The standard reporting ladder extracted from a latency histogram —
/// the percentiles the paper's MAD requirement is stated over (§2, §5),
/// in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyLadder {
    /// Number of samples the ladder summarizes.
    pub count: u64,
    /// Median.
    pub p50_us: u64,
    /// 90th percentile.
    pub p90_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// 99.9th percentile.
    pub p999_us: u64,
    /// 99.99th percentile.
    pub p9999_us: u64,
    /// Largest sample.
    pub max_us: u64,
    /// Arithmetic mean.
    pub mean_us: f64,
}

impl LatencyLadder {
    /// Extract the ladder from a histogram.
    pub fn from_histogram(h: &Histogram) -> Self {
        LatencyLadder {
            count: h.count(),
            p50_us: h.percentile(0.50),
            p90_us: h.percentile(0.90),
            p95_us: h.percentile(0.95),
            p99_us: h.percentile(0.99),
            p999_us: h.percentile(0.999),
            p9999_us: h.percentile(0.9999),
            max_us: h.max(),
            mean_us: h.mean(),
        }
    }
}

impl From<&Histogram> for LatencyLadder {
    fn from(h: &Histogram) -> Self {
        LatencyLadder::from_histogram(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_histogram_matches_plain_histogram() {
        let atomic = AtomicHistogram::default();
        let mut plain = Histogram::default();
        let mut x = 7u64;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = x % 5_000_000;
            atomic.record(v);
            plain.record(v);
        }
        let snap = atomic.snapshot();
        assert_eq!(snap.count(), plain.count());
        assert_eq!(snap.max(), plain.max());
        assert_eq!(snap.min(), plain.min());
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(snap.percentile(q), plain.percentile(q), "p{q}");
        }
    }

    #[test]
    fn atomic_histogram_concurrent_recording() {
        let hist = Arc::new(AtomicHistogram::default());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&hist);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000 + i % 100);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(hist.snapshot().count(), 40_000);
    }

    #[test]
    fn torn_snapshot_with_inverted_min_max_stays_sane() {
        // Simulate a snapshot racing record(): the bucket count landed
        // but min/max were not updated yet (min still u64::MAX, max 0).
        let h = Histogram::from_raw_parts(7, {
            let mut c = vec![0u64; Histogram::new(7).layout().1];
            c[10] = 1;
            c
        }, 0, u64::MAX, 10);
        assert_eq!(h.count(), 1);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(q), 0, "clamped, not u64::MAX (q={q})");
        }
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        assert!(r.start().is_none());
        r.finish(None);
        r.record(123);
        assert!(r.snapshot().is_none());
    }

    #[test]
    fn enabled_recorder_collects() {
        let r = Recorder::enabled();
        let t = r.start();
        assert!(t.is_some());
        r.finish(t);
        r.record(250);
        let snap = r.snapshot().unwrap();
        assert_eq!(snap.count(), 2);
        assert!(snap.max() >= 250);
        // Clones share the histogram.
        let r2 = r.clone();
        r2.record(1);
        assert_eq!(r.snapshot().unwrap().count(), 3);
    }

    #[test]
    fn counter_modes() {
        let off = Counter::disabled();
        off.incr();
        assert_eq!(off.get(), 0);
        let on = Counter::enabled();
        on.incr();
        on.add(4);
        assert_eq!(on.get(), 5);
        let shared = on.clone();
        shared.incr();
        assert_eq!(on.get(), 6);
    }

    #[test]
    fn ladder_extraction() {
        let mut h = Histogram::default();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let ladder = LatencyLadder::from_histogram(&h);
        assert_eq!(ladder.count, 10_000);
        assert!(ladder.p50_us <= ladder.p99_us);
        assert!(ladder.p99_us <= ladder.p999_us);
        assert!(ladder.p999_us <= ladder.p9999_us);
        assert!(ladder.p9999_us <= ladder.max_us);
        assert_eq!(ladder.max_us, 10_000);
    }
}
