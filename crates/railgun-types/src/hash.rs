//! Fast non-cryptographic hashing for hot-path maps.
//!
//! The reservoir probes its dedup set and cursor map on **every** appended
//! event; `std`'s default SipHash costs more than the rest of the append
//! fast path combined. This is the FxHash construction (rotate + xor +
//! multiply, as used by rustc) — not DoS-resistant, which is fine for
//! internal maps keyed by ids the system itself assigns.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` with the [`FxHasher`] (drop-in for hot-path maps).
pub type FastHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` with the [`FxHasher`].
pub type FastHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x517c_c1b7_2722_0a95;

/// FxHash: one rotate-xor-multiply per word of input.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(tail) | ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FastHashMap<u64, &str> = FastHashMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        let mut s: FastHashSet<u64> = FastHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn sequential_ids_spread() {
        // Low bits (bucket selectors) must differ across sequential keys.
        let mut low_bits = FastHashSet::default();
        for i in 0u64..1024 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            low_bits.insert(h.finish() & 0x3ff);
        }
        assert!(low_bits.len() > 512, "got {} distinct buckets", low_bits.len());
    }

    #[test]
    fn byte_slices_include_length() {
        let mut a = FxHasher::default();
        a.write(b"ab");
        let mut b = FxHasher::default();
        b.write(b"ab\0");
        assert_ne!(a.finish(), b.finish(), "length must disambiguate tails");
    }
}
