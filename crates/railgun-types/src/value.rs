//! Dynamically-typed field values.
//!
//! Railgun events carry fields whose types are declared by a [`Schema`](crate::Schema)
//! (see [`crate::schema`]). [`Value`] is the runtime representation used by
//! filter expressions, group-by key extraction, and aggregator inputs.

use std::cmp::Ordering;
use std::fmt;

/// A single field value inside an [`crate::Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float (amounts, scores).
    Float(f64),
    /// UTF-8 string (card ids, merchant ids, addresses, ...).
    Str(String),
}

impl Value {
    /// True iff this is [`Value::Null`].
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, if it has one. `Bool` is not numeric.
    #[inline]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view of the value, if it is an `Int`.
    #[inline]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view of the value, if it is a `Str`.
    #[inline]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view of the value, if it is a `Bool`.
    #[inline]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Truthiness used by the filter expression language: `Bool` is itself,
    /// everything else (including NULL) is not truthy.
    #[inline]
    pub fn is_truthy(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// Total ordering used for `min`/`max` aggregations and comparison
    /// operators. NULLs sort first; cross-type numeric comparison (Int vs
    /// Float) compares numerically; otherwise values order by type rank then
    /// within type. Float NaN sorts greater than all other floats so the
    /// ordering stays total.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            // Distinct non-comparable types: order by type rank.
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 2, // numeric types share a rank
            Value::Str(_) => 3,
        }
    }

    /// Equality for group-by keys and `countDistinct`: like `total_cmp`,
    /// numeric Int/Float compare by value, NaN equals NaN.
    #[inline]
    pub fn key_eq(&self, other: &Value) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }

    /// Approximate in-memory footprint, used for chunk sizing and memory
    /// accounting in the reservoir.
    pub fn heap_size(&self) -> usize {
        match self {
            Value::Str(s) => std::mem::size_of::<Value>() + s.capacity(),
            _ => std::mem::size_of::<Value>(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness_is_strict() {
        assert!(Value::Bool(true).is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(!Value::Int(1).is_truthy());
        assert!(!Value::Null.is_truthy());
    }

    #[test]
    fn numeric_cross_type_comparison() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.0)), Ordering::Equal);
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(
            Value::Float(3.0).total_cmp(&Value::Int(2)),
            Ordering::Greater
        );
    }

    #[test]
    fn nulls_sort_first() {
        assert_eq!(Value::Null.total_cmp(&Value::Int(i64::MIN)), Ordering::Less);
        assert_eq!(Value::Str(String::new()).total_cmp(&Value::Null), Ordering::Greater);
    }

    #[test]
    fn nan_ordering_is_total() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.total_cmp(&nan), Ordering::Equal);
        assert_eq!(nan.total_cmp(&Value::Float(f64::INFINITY)), Ordering::Greater);
    }

    #[test]
    fn key_eq_matches_total_cmp() {
        assert!(Value::Int(5).key_eq(&Value::Float(5.0)));
        assert!(!Value::Str("a".into()).key_eq(&Value::Str("b".into())));
        assert!(Value::Null.key_eq(&Value::Null));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(2.5f64), Value::Float(2.5));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
    }
}
