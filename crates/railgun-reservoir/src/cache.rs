//! Chunk cache with eager read-ahead accounting.
//!
//! The reservoir keeps a bounded number of decoded chunks in memory
//! (§4.1.1, §5.2(b): "we used 220 chunk elements in Railgun's cache"). The
//! cache is an LRU over [`DecodedChunk`]s with two wrinkles:
//!
//! * chunks that are closed but not yet durable on disk are **pinned** —
//!   they are the only copy of their events, so eviction must skip them;
//! * hit/miss/prefetch statistics feed the Figure 9(b) reproduction, where
//!   tail latency degrades once the number of live iterators approaches the
//!   cache capacity.

use std::collections::HashMap;
use std::sync::Arc;

use crate::format::{ChunkId, DecodedChunk};

/// Cache counters (monotonic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups satisfied from the cache.
    pub hits: u64,
    /// Lookups that required a disk load + deserialization.
    pub misses: u64,
    /// Chunks inserted by the read-ahead path.
    pub prefetch_inserts: u64,
    /// Chunks evicted to make room.
    pub evictions: u64,
}

/// Bounded LRU of decoded chunks.
pub struct ChunkCache {
    capacity: usize,
    entries: HashMap<ChunkId, CacheEntry>,
    /// Logical clock for LRU ordering.
    tick: u64,
    stats: CacheStats,
    /// Incremental accounting so [`ChunkCache::heap_bytes`] /
    /// [`ChunkCache::resident_events`] are O(1) — stats polling must never
    /// walk resident chunks (it shares the reservoir lock with ingest).
    resident_heap: usize,
    resident_events: usize,
    /// Shared telemetry mirror of [`CacheStats::misses`] — lets the
    /// engine's metrics plane observe cold-drain chunk misses without
    /// reaching into the reservoir (disabled by default).
    miss_counter: railgun_types::Counter,
}

struct CacheEntry {
    chunk: Arc<DecodedChunk>,
    last_used: u64,
    pinned: bool,
    /// Heap footprint, computed once at insert.
    heap: usize,
}

impl ChunkCache {
    /// Create a cache holding at most `capacity` chunks (min 1).
    pub fn new(capacity: usize) -> Self {
        ChunkCache {
            capacity: capacity.max(1),
            entries: HashMap::new(),
            tick: 0,
            stats: CacheStats::default(),
            resident_heap: 0,
            resident_events: 0,
            miss_counter: railgun_types::Counter::disabled(),
        }
    }

    /// Attach a shared telemetry counter that mirrors
    /// [`CacheStats::misses`] (each miss increments both).
    pub fn set_miss_counter(&mut self, counter: railgun_types::Counter) {
        self.miss_counter = counter;
    }

    /// Configured capacity in chunks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident chunks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff no chunks are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a chunk, bumping its recency and counting a hit.
    pub fn get(&mut self, id: ChunkId) -> Option<Arc<DecodedChunk>> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(&id) {
            Some(e) => {
                e.last_used = tick;
                self.stats.hits += 1;
                Some(Arc::clone(&e.chunk))
            }
            None => {
                self.stats.misses += 1;
                self.miss_counter.incr();
                None
            }
        }
    }

    /// Peek without touching recency or stats (used by memory accounting).
    pub fn contains(&self, id: ChunkId) -> bool {
        self.entries.contains_key(&id)
    }

    /// Insert a chunk loaded on demand (after a miss).
    pub fn insert(&mut self, chunk: Arc<DecodedChunk>) {
        self.insert_inner(chunk, false, false);
    }

    /// Insert a chunk loaded by read-ahead.
    pub fn insert_prefetched(&mut self, chunk: Arc<DecodedChunk>) {
        self.stats.prefetch_inserts += 1;
        self.insert_inner(chunk, false, true);
    }

    /// Insert a freshly closed chunk that is not yet durable; it cannot be
    /// evicted until [`ChunkCache::unpin`] is called.
    pub fn insert_pinned(&mut self, chunk: Arc<DecodedChunk>) {
        self.insert_inner(chunk, true, false);
    }

    fn insert_inner(&mut self, chunk: Arc<DecodedChunk>, pinned: bool, _prefetch: bool) {
        self.tick += 1;
        let id = chunk.id;
        let heap = chunk.heap_bytes();
        let events = chunk.events.len();
        let entry = CacheEntry {
            chunk,
            last_used: self.tick,
            pinned,
            heap,
        };
        self.resident_heap += heap;
        self.resident_events += events;
        if let Some(prev) = self.entries.insert(id, entry) {
            self.resident_heap -= prev.heap;
            self.resident_events -= prev.chunk.events.len();
        }
        self.evict_to_capacity();
    }

    /// Mark a chunk as durable; it becomes evictable.
    pub fn unpin(&mut self, id: ChunkId) {
        if let Some(e) = self.entries.get_mut(&id) {
            e.pinned = false;
        }
        self.evict_to_capacity();
    }

    fn evict_to_capacity(&mut self) {
        while self.entries.len() > self.capacity {
            let victim = self
                .entries
                .iter()
                .filter(|(_, e)| !e.pinned)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(id, _)| *id);
            match victim {
                Some(id) => {
                    self.remove(id);
                    self.stats.evictions += 1;
                }
                None => break, // everything pinned; over-capacity until unpin
            }
        }
    }

    /// Drop a chunk outright (used by eviction and truncation).
    pub fn remove(&mut self, id: ChunkId) {
        if let Some(prev) = self.entries.remove(&id) {
            self.resident_heap -= prev.heap;
            self.resident_events -= prev.chunk.events.len();
        }
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Total heap bytes of resident chunks (O(1), maintained incrementally).
    pub fn heap_bytes(&self) -> usize {
        self.resident_heap
    }

    /// Total events resident (O(1), maintained incrementally).
    pub fn resident_events(&self) -> usize {
        self.resident_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use railgun_types::Timestamp;

    fn chunk(id: u64) -> Arc<DecodedChunk> {
        Arc::new(DecodedChunk {
            id: ChunkId(id),
            schema: railgun_types::SchemaId(0),
            first_ts: Timestamp::from_millis(id as i64 * 100),
            last_ts: Timestamp::from_millis(id as i64 * 100 + 99),
            events: vec![],
        })
    }

    #[test]
    fn hit_and_miss_counting() {
        let mut c = ChunkCache::new(4);
        c.insert(chunk(1));
        assert!(c.get(ChunkId(1)).is_some());
        assert!(c.get(ChunkId(2)).is_none());
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = ChunkCache::new(2);
        c.insert(chunk(1));
        c.insert(chunk(2));
        c.get(ChunkId(1)); // 2 is now LRU
        c.insert(chunk(3));
        assert!(c.contains(ChunkId(1)));
        assert!(!c.contains(ChunkId(2)));
        assert!(c.contains(ChunkId(3)));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn pinned_chunks_survive_eviction() {
        let mut c = ChunkCache::new(2);
        c.insert_pinned(chunk(1));
        c.insert_pinned(chunk(2));
        c.insert(chunk(3)); // over capacity, but 1 and 2 are pinned
        assert!(c.contains(ChunkId(1)));
        assert!(c.contains(ChunkId(2)));
        // The unpinned chunk 3 is the only candidate.
        assert!(!c.contains(ChunkId(3)));
    }

    #[test]
    fn unpin_allows_eviction() {
        let mut c = ChunkCache::new(1);
        c.insert_pinned(chunk(1));
        c.insert(chunk(2)); // 2 evicted immediately (1 pinned)
        assert_eq!(c.len(), 1);
        c.unpin(ChunkId(1));
        c.insert(chunk(3));
        assert!(!c.contains(ChunkId(1)));
        assert!(c.contains(ChunkId(3)));
    }

    #[test]
    fn capacity_at_least_one() {
        let c = ChunkCache::new(0);
        assert_eq!(c.capacity(), 1);
    }

    #[test]
    fn prefetch_insert_counted() {
        let mut c = ChunkCache::new(4);
        c.insert_prefetched(chunk(9));
        assert_eq!(c.stats().prefetch_inserts, 1);
        assert!(c.contains(ChunkId(9)));
    }

    #[test]
    fn remove_drops_entry() {
        let mut c = ChunkCache::new(4);
        c.insert(chunk(1));
        c.remove(ChunkId(1));
        assert!(c.is_empty());
    }
}
