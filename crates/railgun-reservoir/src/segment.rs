//! Append-only segment files holding serialized chunks.
//!
//! Chunks are appended to ordered files; once a file reaches its size
//! target it is **sealed** and never written again (§4.1.1: "files hold
//! multiple chunks of events, until they reach a fixed size, after which
//! they become immutable"). Sequential layout means the OS read-ahead
//! usually has the next chunk in page cache before the reservoir asks for
//! it — the property the paper leans on to relax hardware requirements.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use railgun_types::{RailgunError, Result, Timestamp};

use crate::format::{decode_chunk, DecodedChunk};

/// Sequential identifier of a segment file within one reservoir.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileNo(pub u64);

/// Where one chunk lives inside a segment file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkLocation {
    pub file: FileNo,
    pub offset: u64,
    pub len: u32,
}

/// Metadata for one segment file.
#[derive(Debug, Clone)]
pub struct SegmentMeta {
    pub file: FileNo,
    pub first_ts: Timestamp,
    pub last_ts: Timestamp,
    pub bytes: u64,
    pub chunk_count: u32,
    pub sealed: bool,
}

/// File name for a segment number.
pub fn segment_file_name(no: FileNo) -> String {
    format!("seg-{:08}.rail", no.0)
}

/// The writer half: appends chunk frames to the active segment, sealing
/// files at the size target.
pub struct SegmentWriter {
    dir: PathBuf,
    target_bytes: u64,
    active: Option<(FileNo, File, SegmentMeta)>,
    next_file: FileNo,
    sealed: Vec<SegmentMeta>,
}

impl SegmentWriter {
    /// Create a writer appending into `dir`, starting at `next_file`.
    pub fn new(dir: &Path, target_bytes: u64, next_file: FileNo) -> Self {
        SegmentWriter {
            dir: dir.to_path_buf(),
            target_bytes: target_bytes.max(1),
            active: None,
            next_file,
            sealed: Vec::new(),
        }
    }

    /// Append an encoded chunk frame; returns its location.
    pub fn append(
        &mut self,
        frame: &[u8],
        first_ts: Timestamp,
        last_ts: Timestamp,
    ) -> Result<ChunkLocation> {
        if self.active.is_none() {
            let no = self.next_file;
            self.next_file = FileNo(no.0 + 1);
            let path = self.dir.join(segment_file_name(no));
            let file = OpenOptions::new().create_new(true).append(true).open(path)?;
            self.active = Some((
                no,
                file,
                SegmentMeta {
                    file: no,
                    first_ts,
                    last_ts,
                    bytes: 0,
                    chunk_count: 0,
                    sealed: false,
                },
            ));
        }
        let (no, file, meta) = self.active.as_mut().expect("just ensured");
        let offset = meta.bytes;
        file.write_all(frame)?;
        meta.bytes += frame.len() as u64;
        meta.chunk_count += 1;
        meta.last_ts = last_ts;
        if meta.chunk_count == 1 {
            meta.first_ts = first_ts;
        }
        let loc = ChunkLocation {
            file: *no,
            offset,
            len: frame.len() as u32,
        };
        if meta.bytes >= self.target_bytes {
            self.seal_active()?;
        }
        Ok(loc)
    }

    /// Seal the active file (fsync + mark immutable), if any.
    pub fn seal_active(&mut self) -> Result<()> {
        if let Some((_, file, mut meta)) = self.active.take() {
            file.sync_all()?;
            meta.sealed = true;
            self.sealed.push(meta);
        }
        Ok(())
    }

    /// Flush the active file to disk without sealing.
    pub fn sync(&mut self) -> Result<()> {
        if let Some((_, file, _)) = self.active.as_mut() {
            file.sync_data()?;
        }
        Ok(())
    }

    /// Metadata of every sealed file plus the active one (if any).
    pub fn metas(&self) -> Vec<SegmentMeta> {
        let mut out = self.sealed.clone();
        if let Some((_, _, m)) = &self.active {
            out.push(m.clone());
        }
        out
    }

    /// Next file number the writer would allocate.
    pub fn next_file(&self) -> FileNo {
        self.next_file
    }

    /// Drain sealed-file metadata accumulated since the last call.
    pub fn take_sealed(&mut self) -> Vec<SegmentMeta> {
        std::mem::take(&mut self.sealed)
    }
}

/// Read one chunk frame from a segment file.
pub fn read_chunk_at(dir: &Path, loc: ChunkLocation) -> Result<DecodedChunk> {
    let path = dir.join(segment_file_name(loc.file));
    let mut file = File::open(&path)?;
    file.seek(SeekFrom::Start(loc.offset))?;
    let mut buf = vec![0u8; loc.len as usize];
    file.read_exact(&mut buf)?;
    match decode_chunk(&buf)? {
        Some(frame) => Ok(frame.chunk),
        None => Err(RailgunError::Corruption(format!(
            "chunk frame at {}:{} truncated",
            path.display(),
            loc.offset
        ))),
    }
}

/// A chunk recovered from a segment scan.
pub struct RecoveredChunk {
    pub chunk: DecodedChunk,
    pub location: ChunkLocation,
}

/// Scan every `seg-*.rail` file in `dir` in order, yielding all intact
/// chunks. A torn frame at the tail of the **last** file is tolerated
/// (crash during append); torn frames elsewhere are corruption.
pub fn scan_segments(dir: &Path) -> Result<(Vec<RecoveredChunk>, Vec<SegmentMeta>, FileNo)> {
    let mut names: Vec<(FileNo, PathBuf)> = Vec::new();
    if dir.exists() {
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(num) = name
                .strip_prefix("seg-")
                .and_then(|s| s.strip_suffix(".rail"))
            {
                let no: u64 = num.parse().map_err(|_| {
                    RailgunError::Corruption(format!("bad segment name {name}"))
                })?;
                names.push((FileNo(no), entry.path()));
            }
        }
    }
    names.sort_by_key(|(no, _)| *no);
    let mut chunks = Vec::new();
    let mut metas = Vec::new();
    let mut next_file = FileNo(0);
    let last_idx = names.len().saturating_sub(1);
    for (idx, (no, path)) in names.iter().enumerate() {
        next_file = FileNo(no.0 + 1);
        let raw = std::fs::read(path)?;
        let mut offset = 0usize;
        let mut meta: Option<SegmentMeta> = None;
        while offset < raw.len() {
            match decode_chunk(&raw[offset..])? {
                Some(frame) => {
                    let loc = ChunkLocation {
                        file: *no,
                        offset: offset as u64,
                        len: frame.frame_len as u32,
                    };
                    let m = meta.get_or_insert(SegmentMeta {
                        file: *no,
                        first_ts: frame.chunk.first_ts,
                        last_ts: frame.chunk.last_ts,
                        bytes: 0,
                        chunk_count: 0,
                        sealed: idx != last_idx,
                    });
                    m.last_ts = frame.chunk.last_ts;
                    m.chunk_count += 1;
                    m.bytes = (offset + frame.frame_len) as u64;
                    offset += frame.frame_len;
                    chunks.push(RecoveredChunk {
                        chunk: frame.chunk,
                        location: loc,
                    });
                }
                None if idx == last_idx => break, // torn tail after crash
                None => {
                    return Err(RailgunError::Corruption(format!(
                        "torn frame in sealed segment {}",
                        path.display()
                    )))
                }
            }
        }
        if let Some(m) = meta {
            metas.push(m);
        }
    }
    Ok((chunks, metas, next_file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::Codec;
    use crate::format::{encode_chunk, ChunkId};
    use railgun_types::{Event, EventId, SchemaId, Value};

    fn fresh(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("railgun-seg-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn frame(id: u64, ts0: i64, n: u64) -> (Vec<u8>, Timestamp, Timestamp) {
        let events: Vec<Event> = (0..n)
            .map(|i| {
                Event::new(
                    EventId(id * 1000 + i),
                    Timestamp::from_millis(ts0 + i as i64),
                    vec![Value::Int(i as i64)],
                )
            })
            .collect();
        let mut buf = Vec::new();
        encode_chunk(&mut buf, ChunkId(id), SchemaId(0), Codec::RailZ, &events);
        (buf, events[0].ts, events[n as usize - 1].ts)
    }

    #[test]
    fn append_read_roundtrip() {
        let dir = fresh("rw");
        let mut w = SegmentWriter::new(&dir, 1 << 20, FileNo(0));
        let (f1, a1, b1) = frame(1, 100, 10);
        let loc1 = w.append(&f1, a1, b1).unwrap();
        let (f2, a2, b2) = frame(2, 200, 20);
        let loc2 = w.append(&f2, a2, b2).unwrap();
        w.sync().unwrap();
        let c1 = read_chunk_at(&dir, loc1).unwrap();
        assert_eq!(c1.id, ChunkId(1));
        assert_eq!(c1.events.len(), 10);
        let c2 = read_chunk_at(&dir, loc2).unwrap();
        assert_eq!(c2.id, ChunkId(2));
        assert_eq!(loc2.offset, f1.len() as u64);
    }

    #[test]
    fn files_seal_at_target_size() {
        let dir = fresh("seal");
        let mut w = SegmentWriter::new(&dir, 1, FileNo(0)); // seal every chunk
        for i in 0..5 {
            let (f, a, b) = frame(i, i as i64 * 100, 10);
            w.append(&f, a, b).unwrap();
        }
        let metas = w.metas();
        assert!(metas.len() >= 5, "each chunk should seal its file");
        assert!(metas.iter().take(metas.len() - 1).all(|m| m.sealed));
        assert_eq!(w.next_file().0 as usize, metas.len());
    }

    #[test]
    fn scan_recovers_all_chunks() {
        let dir = fresh("scan");
        {
            let mut w = SegmentWriter::new(&dir, 300, FileNo(0));
            for i in 0..8 {
                let (f, a, b) = frame(i, i as i64 * 1000, 5);
                w.append(&f, a, b).unwrap();
            }
            w.sync().unwrap();
        }
        let (chunks, metas, next_file) = scan_segments(&dir).unwrap();
        assert_eq!(chunks.len(), 8);
        assert!(chunks.windows(2).all(|w| w[0].chunk.id < w[1].chunk.id));
        assert!(!metas.is_empty());
        assert!(next_file.0 >= metas.len() as u64);
        // Every recovered location re-reads correctly.
        for rc in &chunks {
            let again = read_chunk_at(&dir, rc.location).unwrap();
            assert_eq!(again.id, rc.chunk.id);
        }
    }

    #[test]
    fn scan_tolerates_torn_tail_in_last_file() {
        let dir = fresh("torn");
        {
            let mut w = SegmentWriter::new(&dir, 1 << 20, FileNo(0));
            for i in 0..3 {
                let (f, a, b) = frame(i, i as i64 * 1000, 5);
                w.append(&f, a, b).unwrap();
            }
            w.sync().unwrap();
        }
        // Truncate the (single, active) file mid-frame.
        let path = dir.join(segment_file_name(FileNo(0)));
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 10]).unwrap();
        let (chunks, _, _) = scan_segments(&dir).unwrap();
        assert_eq!(chunks.len(), 2);
    }

    #[test]
    fn scan_empty_dir() {
        let dir = fresh("empty");
        let (chunks, metas, next_file) = scan_segments(&dir).unwrap();
        assert!(chunks.is_empty());
        assert!(metas.is_empty());
        assert_eq!(next_file, FileNo(0));
    }

    #[test]
    fn writer_resumes_after_recovery_without_collision() {
        let dir = fresh("resume");
        {
            let mut w = SegmentWriter::new(&dir, 50, FileNo(0)); // seals every chunk
            let (f, a, b) = frame(0, 0, 5);
            w.append(&f, a, b).unwrap();
        }
        let (_, _, next_file) = scan_segments(&dir).unwrap();
        let mut w = SegmentWriter::new(&dir, 50, next_file);
        let (f, a, b) = frame(1, 1000, 5);
        // Must not hit create_new collision with the existing file.
        w.append(&f, a, b).unwrap();
        let (chunks, _, _) = scan_segments(&dir).unwrap();
        assert_eq!(chunks.len(), 2);
    }
}
