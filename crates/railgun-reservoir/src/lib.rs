//! # railgun-reservoir — the disk-backed event reservoir
//!
//! Real-time sliding windows cannot discard events: every event must be
//! re-read exactly once when it expires from each window. The **event
//! reservoir** (paper §4.1.1, an evolution of the SlideM algorithm) makes
//! that affordable for windows of hours, days or years by exploiting the
//! predictable, timestamp-ordered access pattern of streaming windows:
//!
//! * arrivals accumulate in a small in-memory **open chunk**, insert-sorted
//!   by timestamp;
//! * closed chunks are serialized, **compressed** ([`compress`]) and
//!   appended asynchronously to immutable **segment files** ([`segment`]);
//! * windows read through [`Cursor`]s that load chunks via a bounded
//!   **cache** with eager read-ahead ([`cache`]) — in steady state the next
//!   chunk is already resident when a window needs it, so disk never sits on
//!   the latency-critical path;
//! * a **schema registry** ([`registry`]) versions event schemas so old
//!   chunks outlive schema evolution;
//! * **late events** are admitted while their chunk is open or in
//!   transition, then discarded or timestamp-rewritten per policy;
//! * events are **deduplicated by id** against in-memory chunks, which
//!   combined with at-least-once delivery yields exactly-once processing.
//!
//! Memory usage is bounded by the chunk cache, *independent of window
//! size* — the enabler for the paper's Figure 9(a): "windows of years are
//! equivalent to windows of seconds".
//!
//! ```
//! use railgun_reservoir::{Reservoir, ReservoirConfig};
//! use railgun_types::{Event, EventId, FieldType, Schema, Timestamp, Value};
//!
//! let dir = std::env::temp_dir().join(format!("reservoir-doc-{}", std::process::id()));
//! # std::fs::remove_dir_all(&dir).ok();
//! let schema = Schema::from_pairs(&[("amount", FieldType::Float)]).unwrap();
//! let res = Reservoir::open(&dir, schema, ReservoirConfig::default()).unwrap();
//!
//! for i in 0..10 {
//!     let e = Event::new(EventId(i), Timestamp::from_millis(i as i64 * 100),
//!                        vec![Value::Float(1.0)]);
//!     res.append(e).unwrap();
//! }
//! // A window tail: expire everything before t=500.
//! let tail = res.cursor_at_start();
//! let expired = tail.advance_upto(Timestamp::from_millis(500));
//! assert_eq!(expired.len(), 5);
//! # drop(tail); drop(res); std::fs::remove_dir_all(&dir).ok();
//! ```

pub mod cache;
pub mod compress;
pub mod format;
pub mod registry;
pub mod reservoir;
pub mod segment;

pub use cache::CacheStats;
pub use compress::Codec;
pub use format::{ChunkId, DecodedChunk};
pub use registry::SchemaRegistry;
pub use reservoir::{
    AppendOutcome, Cursor, LatePolicy, Reservoir, ReservoirConfig, ReservoirStats,
};
