//! Chunk compression.
//!
//! The paper compresses chunks "aggressively" before persisting them
//! (§4.1.1) — storage overhead matters because events are replicated across
//! task processors. We implement a small LZ77-style byte compressor
//! (`RailZ`) with a 64 KiB window and greedy hash-chain matching: the same
//! family as LZ4, chosen so the decode path stays a tight copy loop (chunk
//! deserialization cost is on the read-miss path, §5.2(b)).
//!
//! Token format (repeating until input exhausted):
//!
//! ```text
//! literal run : 0x00 | varint len | bytes
//! match       : 0x01 | varint len (>= 4) | varint distance (>= 1)
//! ```

use bytes::BufMut;
use railgun_types::encode::{get_uvarint, put_uvarint};
use railgun_types::{RailgunError, Result};

/// Which codec a chunk was written with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Codec {
    /// Store bytes verbatim (ablation baseline).
    None,
    /// LZ77-style compression (default).
    RailZ,
}

impl Codec {
    /// Wire id persisted in chunk headers.
    pub fn id(self) -> u8 {
        match self {
            Codec::None => 0,
            Codec::RailZ => 1,
        }
    }

    /// Decode a wire id.
    pub fn from_id(id: u8) -> Result<Codec> {
        match id {
            0 => Ok(Codec::None),
            1 => Ok(Codec::RailZ),
            other => Err(RailgunError::Corruption(format!(
                "unknown compression codec {other}"
            ))),
        }
    }

    /// Compress `input` with this codec.
    pub fn compress(self, input: &[u8]) -> Vec<u8> {
        match self {
            Codec::None => input.to_vec(),
            Codec::RailZ => compress_railz(input),
        }
    }

    /// Decompress data produced by [`Codec::compress`].
    pub fn decompress(self, input: &[u8], expected_len: usize) -> Result<Vec<u8>> {
        match self {
            Codec::None => Ok(input.to_vec()),
            Codec::RailZ => decompress_railz(input, expected_len),
        }
    }
}

const TOKEN_LITERAL: u8 = 0;
const TOKEN_MATCH: u8 = 1;
const MIN_MATCH: usize = 4;
const MAX_DISTANCE: usize = 1 << 16;
const HASH_BITS: u32 = 15;

#[inline]
fn hash4(data: &[u8]) -> usize {
    let v = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Greedy LZ77 with one-probe hash table.
fn compress_railz(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut pos = 0usize;
    let mut literal_start = 0usize;

    while pos + MIN_MATCH <= input.len() {
        let h = hash4(&input[pos..]);
        let candidate = table[h];
        table[h] = pos;
        let mut match_len = 0;
        if candidate != usize::MAX && pos - candidate <= MAX_DISTANCE {
            let max = input.len() - pos;
            while match_len < max && input[candidate + match_len] == input[pos + match_len] {
                match_len += 1;
            }
        }
        if match_len >= MIN_MATCH {
            // Flush pending literals.
            if literal_start < pos {
                let lit = &input[literal_start..pos];
                out.put_u8(TOKEN_LITERAL);
                put_uvarint(&mut out, lit.len() as u64);
                out.put_slice(lit);
            }
            out.put_u8(TOKEN_MATCH);
            put_uvarint(&mut out, match_len as u64);
            put_uvarint(&mut out, (pos - candidate) as u64);
            // Seed the table sparsely inside the match to keep encode cheap.
            let end = pos + match_len;
            let mut p = pos + 1;
            while p + MIN_MATCH <= input.len() && p < end {
                table[hash4(&input[p..])] = p;
                p += 3;
            }
            pos = end;
            literal_start = pos;
        } else {
            pos += 1;
        }
    }
    if literal_start < input.len() {
        let lit = &input[literal_start..];
        out.put_u8(TOKEN_LITERAL);
        put_uvarint(&mut out, lit.len() as u64);
        out.put_slice(lit);
    }
    out
}

fn decompress_railz(input: &[u8], expected_len: usize) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(expected_len);
    let mut cur = input;
    while !cur.is_empty() {
        let token = cur[0];
        cur = &cur[1..];
        match token {
            TOKEN_LITERAL => {
                let len = get_uvarint(&mut cur)? as usize;
                if cur.len() < len {
                    return Err(RailgunError::Corruption("railz literal truncated".into()));
                }
                out.extend_from_slice(&cur[..len]);
                cur = &cur[len..];
            }
            TOKEN_MATCH => {
                let len = get_uvarint(&mut cur)? as usize;
                let dist = get_uvarint(&mut cur)? as usize;
                if dist == 0 || dist > out.len() || len < MIN_MATCH {
                    return Err(RailgunError::Corruption("railz bad match token".into()));
                }
                // Overlapping copies are legal (RLE-style), copy byte-wise.
                let start = out.len() - dist;
                for i in 0..len {
                    let b = out[start + i];
                    out.push(b);
                }
            }
            other => {
                return Err(RailgunError::Corruption(format!(
                    "railz unknown token {other}"
                )))
            }
        }
        if out.len() > expected_len {
            return Err(RailgunError::Corruption("railz output overrun".into()));
        }
    }
    if out.len() != expected_len {
        return Err(RailgunError::Corruption(format!(
            "railz length mismatch: got {}, expected {expected_len}",
            out.len()
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let compressed = Codec::RailZ.compress(data);
        let back = Codec::RailZ.decompress(&compressed, data.len()).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn roundtrip_empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
        roundtrip(b"abcd");
    }

    #[test]
    fn roundtrip_repetitive_compresses_well() {
        let data: Vec<u8> = b"cardId=4532-".repeat(500);
        let compressed = Codec::RailZ.compress(&data);
        assert!(
            compressed.len() < data.len() / 4,
            "repetitive data should compress >4x: {} -> {}",
            data.len(),
            compressed.len()
        );
        roundtrip(&data);
    }

    #[test]
    fn roundtrip_rle_overlapping_match() {
        let data = vec![7u8; 10_000];
        let compressed = Codec::RailZ.compress(&data);
        assert!(compressed.len() < 64);
        roundtrip(&data);
    }

    #[test]
    fn roundtrip_incompressible() {
        // Pseudo-random bytes via xorshift.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..8192)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn codec_none_is_identity() {
        let data = b"anything at all";
        let c = Codec::None.compress(data);
        assert_eq!(c, data);
        assert_eq!(Codec::None.decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn codec_ids_roundtrip() {
        for c in [Codec::None, Codec::RailZ] {
            assert_eq!(Codec::from_id(c.id()).unwrap(), c);
        }
        assert!(Codec::from_id(200).is_err());
    }

    #[test]
    fn corrupt_stream_rejected() {
        let data = b"hello hello hello hello hello".to_vec();
        let mut compressed = Codec::RailZ.compress(&data);
        compressed[0] = 9; // unknown token
        assert!(Codec::RailZ.decompress(&compressed, data.len()).is_err());
    }

    #[test]
    fn wrong_expected_len_rejected() {
        let data = b"hello world".to_vec();
        let compressed = Codec::RailZ.compress(&data);
        assert!(Codec::RailZ.decompress(&compressed, data.len() + 1).is_err());
        assert!(Codec::RailZ.decompress(&compressed, data.len() - 1).is_err());
    }
}
