//! On-disk chunk format.
//!
//! A chunk is the reservoir's unit of I/O and caching (§4.1.1): a group of
//! contiguous events, serialized, compressed and framed with a CRC. The
//! frame layout is:
//!
//! ```text
//! [u32 LE frame length excluding this field]
//! [u32 LE crc32c of everything after the crc field]
//! header:
//!   varint chunk id | varint schema id | u8 codec id
//!   varint event count | ivarint first_ts | ivarint last_ts
//!   varint uncompressed body length
//! body (compressed):
//!   per event: varint id delta-ish | ivarint ts delta | values...
//! ```
//!
//! Event timestamps are delta-encoded against the previous event (they are
//! nearly sorted, so deltas are tiny varints), and the whole body then runs
//! through the chunk codec — the two layers the paper calls "a data format
//! and compression for efficient storage".

use bytes::{Buf, BufMut};
use railgun_types::encode::{
    crc32c, get_ivarint, get_uvarint, get_value, put_ivarint, put_uvarint, put_value,
};
use railgun_types::{Event, EventId, RailgunError, Result, SchemaId, Timestamp};

use crate::compress::Codec;

/// Sequential identifier of a chunk within one reservoir.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChunkId(pub u64);

/// A fully decoded, immutable chunk resident in memory (cache entry).
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedChunk {
    pub id: ChunkId,
    pub schema: SchemaId,
    pub first_ts: Timestamp,
    pub last_ts: Timestamp,
    pub events: Vec<Event>,
}

impl DecodedChunk {
    /// Approximate heap footprint (memory accounting for the §5.2 claim).
    pub fn heap_bytes(&self) -> usize {
        self.events.iter().map(Event::heap_size).sum::<usize>() + std::mem::size_of::<Self>()
    }
}

/// Serialize a chunk into `out`, returning the encoded frame length.
pub fn encode_chunk(
    out: &mut Vec<u8>,
    id: ChunkId,
    schema: SchemaId,
    codec: Codec,
    events: &[Event],
) -> usize {
    debug_assert!(!events.is_empty(), "chunks are never empty");
    let first_ts = events.first().expect("non-empty").ts;
    let last_ts = events.last().expect("non-empty").ts;

    // Body: delta-encoded events.
    let mut body = Vec::with_capacity(events.len() * 32);
    let mut prev_ts = first_ts.as_millis();
    let mut prev_id = 0u64;
    for e in events {
        put_ivarint(&mut body, e.id.0 as i64 - prev_id as i64);
        prev_id = e.id.0;
        put_ivarint(&mut body, e.ts.as_millis() - prev_ts);
        prev_ts = e.ts.as_millis();
        put_uvarint(&mut body, e.values().len() as u64);
        for v in e.values() {
            put_value(&mut body, v);
        }
    }
    let compressed = codec.compress(&body);

    // Header + body into a payload buffer (covered by the CRC).
    let mut payload = Vec::with_capacity(compressed.len() + 64);
    put_uvarint(&mut payload, id.0);
    put_uvarint(&mut payload, u64::from(schema.0));
    payload.put_u8(codec.id());
    put_uvarint(&mut payload, events.len() as u64);
    put_ivarint(&mut payload, first_ts.as_millis());
    put_ivarint(&mut payload, last_ts.as_millis());
    put_uvarint(&mut payload, body.len() as u64);
    payload.put_slice(&compressed);

    let start = out.len();
    out.put_u32_le(payload.len() as u32 + 4); // +4 for the crc field
    out.put_u32_le(crc32c(&payload));
    out.put_slice(&payload);
    out.len() - start
}

/// Result of decoding a frame: the chunk plus the total frame size consumed.
pub struct DecodedFrame {
    pub chunk: DecodedChunk,
    pub frame_len: usize,
}

/// Decode one chunk frame from the front of `data`.
///
/// Returns `Ok(None)` on a cleanly truncated tail (fewer bytes than one
/// frame header) so recovery scans can stop; corrupt frames are errors.
pub fn decode_chunk(data: &[u8]) -> Result<Option<DecodedFrame>> {
    if data.len() < 8 {
        return Ok(None);
    }
    let mut cur = data;
    let frame_len = cur.get_u32_le() as usize;
    if frame_len < 4 || cur.len() < frame_len {
        return Ok(None); // torn tail
    }
    let stored_crc = cur.get_u32_le();
    let payload = &cur[..frame_len - 4];
    if crc32c(payload) != stored_crc {
        return Err(RailgunError::Corruption("chunk crc mismatch".into()));
    }
    let mut p = payload;
    let id = ChunkId(get_uvarint(&mut p)?);
    let schema = SchemaId(get_uvarint(&mut p)? as u32);
    if !p.has_remaining() {
        return Err(RailgunError::Corruption("chunk header truncated".into()));
    }
    let codec = Codec::from_id(p.get_u8())?;
    let count = get_uvarint(&mut p)? as usize;
    let first_ts = Timestamp::from_millis(get_ivarint(&mut p)?);
    let last_ts = Timestamp::from_millis(get_ivarint(&mut p)?);
    let body_len = get_uvarint(&mut p)? as usize;
    let body = codec.decompress(p, body_len)?;

    let mut b = &body[..];
    let mut events = Vec::with_capacity(count);
    let mut prev_ts = first_ts.as_millis();
    let mut prev_id = 0u64;
    for _ in 0..count {
        let id_delta = get_ivarint(&mut b)?;
        let eid = (prev_id as i64 + id_delta) as u64;
        prev_id = eid;
        let ts_delta = get_ivarint(&mut b)?;
        let ts = prev_ts + ts_delta;
        prev_ts = ts;
        let nvals = get_uvarint(&mut b)? as usize;
        let mut values = Vec::with_capacity(nvals);
        for _ in 0..nvals {
            values.push(get_value(&mut b)?);
        }
        events.push(Event::new(EventId(eid), Timestamp::from_millis(ts), values));
    }
    if b.has_remaining() {
        return Err(RailgunError::Corruption("chunk body has trailing bytes".into()));
    }
    Ok(Some(DecodedFrame {
        chunk: DecodedChunk {
            id,
            schema,
            first_ts,
            last_ts,
            events,
        },
        frame_len: frame_len + 4,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use railgun_types::Value;

    fn make_events(n: u64) -> Vec<Event> {
        (0..n)
            .map(|i| {
                Event::new(
                    EventId(1000 + i),
                    Timestamp::from_millis(50_000 + i as i64 * 13),
                    vec![
                        Value::Str(format!("card-{}", i % 7)),
                        Value::Float(9.99 + i as f64),
                        Value::Int(i as i64),
                    ],
                )
            })
            .collect()
    }

    #[test]
    fn roundtrip_both_codecs() {
        for codec in [Codec::None, Codec::RailZ] {
            let events = make_events(100);
            let mut buf = Vec::new();
            let len = encode_chunk(&mut buf, ChunkId(5), SchemaId(2), codec, &events);
            assert_eq!(len, buf.len());
            let frame = decode_chunk(&buf).unwrap().expect("full frame");
            assert_eq!(frame.frame_len, buf.len());
            assert_eq!(frame.chunk.id, ChunkId(5));
            assert_eq!(frame.chunk.schema, SchemaId(2));
            assert_eq!(frame.chunk.events, events);
            assert_eq!(frame.chunk.first_ts, events[0].ts);
            assert_eq!(frame.chunk.last_ts, events[99].ts);
        }
    }

    #[test]
    fn compression_shrinks_redundant_events() {
        let events = make_events(500);
        let mut plain = Vec::new();
        encode_chunk(&mut plain, ChunkId(0), SchemaId(0), Codec::None, &events);
        let mut packed = Vec::new();
        encode_chunk(&mut packed, ChunkId(0), SchemaId(0), Codec::RailZ, &events);
        assert!(
            packed.len() < plain.len(),
            "railz ({}) should beat none ({})",
            packed.len(),
            plain.len()
        );
    }

    #[test]
    fn torn_tail_returns_none() {
        let events = make_events(10);
        let mut buf = Vec::new();
        encode_chunk(&mut buf, ChunkId(1), SchemaId(0), Codec::RailZ, &events);
        for cut in [0, 3, 7, buf.len() - 1] {
            assert!(decode_chunk(&buf[..cut]).unwrap().is_none(), "cut={cut}");
        }
    }

    #[test]
    fn bit_flip_is_corruption() {
        let events = make_events(10);
        let mut buf = Vec::new();
        encode_chunk(&mut buf, ChunkId(1), SchemaId(0), Codec::RailZ, &events);
        let mut bad = buf.clone();
        bad[20] ^= 0x01;
        assert!(decode_chunk(&bad).is_err());
    }

    #[test]
    fn multiple_frames_decode_sequentially() {
        let mut buf = Vec::new();
        encode_chunk(&mut buf, ChunkId(1), SchemaId(0), Codec::RailZ, &make_events(5));
        let first_len = buf.len();
        encode_chunk(&mut buf, ChunkId(2), SchemaId(0), Codec::RailZ, &make_events(7));
        let f1 = decode_chunk(&buf).unwrap().unwrap();
        assert_eq!(f1.frame_len, first_len);
        assert_eq!(f1.chunk.id, ChunkId(1));
        let f2 = decode_chunk(&buf[f1.frame_len..]).unwrap().unwrap();
        assert_eq!(f2.chunk.id, ChunkId(2));
        assert_eq!(f2.chunk.events.len(), 7);
    }

    #[test]
    fn out_of_order_timestamps_survive_roundtrip() {
        // Transition chunks may hold late events; deltas can be negative.
        let events = vec![
            Event::new(EventId(1), Timestamp::from_millis(100), vec![]),
            Event::new(EventId(2), Timestamp::from_millis(90), vec![]),
            Event::new(EventId(3), Timestamp::from_millis(110), vec![]),
        ];
        let mut buf = Vec::new();
        encode_chunk(&mut buf, ChunkId(0), SchemaId(0), Codec::RailZ, &events);
        let frame = decode_chunk(&buf).unwrap().unwrap();
        assert_eq!(frame.chunk.events, events);
    }
}
