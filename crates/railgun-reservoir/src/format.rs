//! On-disk chunk format (version 2).
//!
//! A chunk is the reservoir's unit of I/O and caching (§4.1.1): a group of
//! contiguous events, serialized, compressed and framed with a CRC. The
//! frame layout is:
//!
//! ```text
//! [u32 LE frame length excluding this field]
//! [u32 LE crc32c of everything after the crc field]
//! header:
//!   u8 version (0x82 = v2) | u8 flags
//!   varint chunk id | varint schema id | u8 codec id
//!   varint event count | ivarint first_ts | ivarint last_ts
//!   [varint arity — only when flags has UNIFORM_ARITY]
//!   varint uncompressed body length
//! body (compressed):
//!   per event: ivarint id delta
//!              | ts delta (uvarint when SORTED_TS, ivarint otherwise)
//!              | [varint arity — only when NOT UNIFORM_ARITY] | values...
//! ```
//!
//! Two header flags amortize per-event cost for the overwhelmingly common
//! shapes (§5.2(b)): `SORTED_TS` marks a chunk whose timestamps are
//! non-decreasing, so deltas skip the zigzag mapping and halve in size;
//! `UNIFORM_ARITY` hoists the per-event value count into the header (every
//! event of one schema has the same arity in practice). Timestamps are
//! delta-encoded against the previous event either way, and the whole body
//! then runs through the chunk codec — the two layers the paper calls "a
//! data format and compression for efficient storage".
//!
//! ## Versioning
//!
//! The version byte has the high bit set (`0x80 | 2`), which no v1 frame
//! payload started with unless its chunk id was ≥ 128: v1 had no version
//! byte, so the payload began with the chunk-id varint, whose first byte is
//! below `0x80` for small ids. Decoding a v1 frame therefore fails with a
//! clear "legacy chunk format" [`RailgunError::Corruption`] (see DESIGN.md
//! § "Chunk format v2") instead of silently misreading; v1 reservoirs must
//! be re-ingested from the messaging layer.

use bytes::{Buf, BufMut};
use railgun_types::encode::{
    crc32c, get_ivarint, get_uvarint, get_value, put_ivarint, put_uvarint, put_value,
};
use railgun_types::{Event, EventId, RailgunError, Result, SchemaId, Timestamp};

use crate::compress::Codec;

/// Sequential identifier of a chunk within one reservoir.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChunkId(pub u64);

/// A fully decoded, immutable chunk resident in memory (cache entry).
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedChunk {
    pub id: ChunkId,
    pub schema: SchemaId,
    pub first_ts: Timestamp,
    pub last_ts: Timestamp,
    pub events: Vec<Event>,
}

impl DecodedChunk {
    /// Approximate heap footprint (memory accounting for the §5.2 claim).
    pub fn heap_bytes(&self) -> usize {
        self.events.iter().map(Event::heap_size).sum::<usize>() + std::mem::size_of::<Self>()
    }
}

/// Version byte of the current chunk format: high bit (so v1 frames with
/// small chunk ids are recognized as legacy) plus the version number.
pub const CHUNK_FORMAT_VERSION: u8 = 0x80 | 2;

/// Chunk timestamps are non-decreasing; ts deltas are plain uvarints.
const FLAG_SORTED_TS: u8 = 0b01;
/// Every event has the same value count, hoisted into the header.
const FLAG_UNIFORM_ARITY: u8 = 0b10;
const FLAG_MASK: u8 = FLAG_SORTED_TS | FLAG_UNIFORM_ARITY;

/// Serialize a chunk into `out`, returning the encoded frame length.
pub fn encode_chunk(
    out: &mut Vec<u8>,
    id: ChunkId,
    schema: SchemaId,
    codec: Codec,
    events: &[Event],
) -> usize {
    debug_assert!(!events.is_empty(), "chunks are never empty");
    let first_ts = events.first().expect("non-empty").ts;
    let last_ts = events.last().expect("non-empty").ts;
    let sorted = events.windows(2).all(|w| w[0].ts <= w[1].ts);
    let arity = events.first().expect("non-empty").values().len();
    let uniform = events.iter().all(|e| e.values().len() == arity);
    let mut flags = 0u8;
    if sorted {
        flags |= FLAG_SORTED_TS;
    }
    if uniform {
        flags |= FLAG_UNIFORM_ARITY;
    }

    // Body: delta-encoded events.
    let mut body = Vec::with_capacity(events.len() * 32);
    let mut prev_ts = first_ts.as_millis();
    let mut prev_id = 0u64;
    for e in events {
        put_ivarint(&mut body, e.id.0 as i64 - prev_id as i64);
        prev_id = e.id.0;
        let dt = e.ts.as_millis() - prev_ts;
        if sorted {
            put_uvarint(&mut body, dt as u64);
        } else {
            put_ivarint(&mut body, dt);
        }
        prev_ts = e.ts.as_millis();
        if !uniform {
            put_uvarint(&mut body, e.values().len() as u64);
        }
        for v in e.values() {
            put_value(&mut body, v);
        }
    }
    let compressed = codec.compress(&body);

    // Frame directly into `out`: length and CRC are patched afterwards so
    // the payload is written exactly once (no intermediate copy).
    let start = out.len();
    out.put_u32_le(0); // frame length placeholder
    out.put_u32_le(0); // crc placeholder
    out.put_u8(CHUNK_FORMAT_VERSION);
    out.put_u8(flags);
    put_uvarint(out, id.0);
    put_uvarint(out, u64::from(schema.0));
    out.put_u8(codec.id());
    put_uvarint(out, events.len() as u64);
    put_ivarint(out, first_ts.as_millis());
    put_ivarint(out, last_ts.as_millis());
    if uniform {
        put_uvarint(out, arity as u64);
    }
    put_uvarint(out, body.len() as u64);
    out.put_slice(&compressed);

    let payload_len = out.len() - start - 8;
    let crc = crc32c(&out[start + 8..]);
    out[start..start + 4].copy_from_slice(&(payload_len as u32 + 4).to_le_bytes());
    out[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
    out.len() - start
}

/// Result of decoding a frame: the chunk plus the total frame size consumed.
#[derive(Debug)]
pub struct DecodedFrame {
    pub chunk: DecodedChunk,
    pub frame_len: usize,
}

/// Decode one chunk frame from the front of `data`.
///
/// Returns `Ok(None)` on a cleanly truncated tail (fewer bytes than one
/// frame header) so recovery scans can stop; corrupt frames are errors.
pub fn decode_chunk(data: &[u8]) -> Result<Option<DecodedFrame>> {
    if data.len() < 8 {
        return Ok(None);
    }
    let mut cur = data;
    let frame_len = cur.get_u32_le() as usize;
    if frame_len < 4 || cur.len() < frame_len {
        return Ok(None); // torn tail
    }
    let stored_crc = cur.get_u32_le();
    let payload = &cur[..frame_len - 4];
    if crc32c(payload) != stored_crc {
        return Err(RailgunError::Corruption("chunk crc mismatch".into()));
    }
    let mut p = payload;
    if p.len() < 2 {
        return Err(RailgunError::Corruption("chunk header truncated".into()));
    }
    let version = p.get_u8();
    if version != CHUNK_FORMAT_VERSION {
        if version < 0x80 {
            // v1 frames had no version byte; their payload started with the
            // chunk-id varint (first byte < 0x80 for ids below 128).
            return Err(RailgunError::Corruption(
                "legacy chunk format (v1, pre-versioned); this build reads chunk \
                 format v2 — re-ingest from the messaging layer or read with a \
                 pre-v2 build (see DESIGN.md § Chunk format v2)"
                    .into(),
            ));
        }
        return Err(RailgunError::Corruption(format!(
            "unsupported chunk format version {:#04x} (this build reads {:#04x})",
            version, CHUNK_FORMAT_VERSION
        )));
    }
    let flags = p.get_u8();
    if flags & !FLAG_MASK != 0 {
        return Err(RailgunError::Corruption(format!(
            "unknown chunk flags {flags:#04x}"
        )));
    }
    let sorted = flags & FLAG_SORTED_TS != 0;
    let uniform = flags & FLAG_UNIFORM_ARITY != 0;
    let id = ChunkId(get_uvarint(&mut p)?);
    let schema = SchemaId(get_uvarint(&mut p)? as u32);
    if !p.has_remaining() {
        return Err(RailgunError::Corruption("chunk header truncated".into()));
    }
    let codec = Codec::from_id(p.get_u8())?;
    let count = get_uvarint(&mut p)? as usize;
    let first_ts = Timestamp::from_millis(get_ivarint(&mut p)?);
    let last_ts = Timestamp::from_millis(get_ivarint(&mut p)?);
    let arity = if uniform {
        let a = get_uvarint(&mut p)? as usize;
        if a > 1 << 20 {
            return Err(RailgunError::Corruption(format!(
                "implausible chunk arity {a}"
            )));
        }
        Some(a)
    } else {
        None
    };
    let body_len = get_uvarint(&mut p)? as usize;
    let body = codec.decompress(p, body_len)?;

    let mut b = &body[..];
    let mut events = Vec::with_capacity(count);
    let mut prev_ts = first_ts.as_millis();
    let mut prev_id = 0u64;
    for _ in 0..count {
        let id_delta = get_ivarint(&mut b)?;
        let eid = (prev_id as i64 + id_delta) as u64;
        prev_id = eid;
        let ts_delta = if sorted {
            get_uvarint(&mut b)? as i64
        } else {
            get_ivarint(&mut b)?
        };
        let ts = prev_ts + ts_delta;
        prev_ts = ts;
        let nvals = match arity {
            Some(a) => a,
            None => {
                let n = get_uvarint(&mut b)? as usize;
                if n > 1 << 20 {
                    return Err(RailgunError::Corruption(format!(
                        "implausible field count {n}"
                    )));
                }
                n
            }
        };
        let mut values = Vec::with_capacity(nvals);
        for _ in 0..nvals {
            values.push(get_value(&mut b)?);
        }
        events.push(Event::new(EventId(eid), Timestamp::from_millis(ts), values));
    }
    if b.has_remaining() {
        return Err(RailgunError::Corruption("chunk body has trailing bytes".into()));
    }
    Ok(Some(DecodedFrame {
        chunk: DecodedChunk {
            id,
            schema,
            first_ts,
            last_ts,
            events,
        },
        frame_len: frame_len + 4,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use railgun_types::Value;

    fn make_events(n: u64) -> Vec<Event> {
        (0..n)
            .map(|i| {
                Event::new(
                    EventId(1000 + i),
                    Timestamp::from_millis(50_000 + i as i64 * 13),
                    vec![
                        Value::Str(format!("card-{}", i % 7)),
                        Value::Float(9.99 + i as f64),
                        Value::Int(i as i64),
                    ],
                )
            })
            .collect()
    }

    #[test]
    fn roundtrip_both_codecs() {
        for codec in [Codec::None, Codec::RailZ] {
            let events = make_events(100);
            let mut buf = Vec::new();
            let len = encode_chunk(&mut buf, ChunkId(5), SchemaId(2), codec, &events);
            assert_eq!(len, buf.len());
            let frame = decode_chunk(&buf).unwrap().expect("full frame");
            assert_eq!(frame.frame_len, buf.len());
            assert_eq!(frame.chunk.id, ChunkId(5));
            assert_eq!(frame.chunk.schema, SchemaId(2));
            assert_eq!(frame.chunk.events, events);
            assert_eq!(frame.chunk.first_ts, events[0].ts);
            assert_eq!(frame.chunk.last_ts, events[99].ts);
        }
    }

    #[test]
    fn compression_shrinks_redundant_events() {
        let events = make_events(500);
        let mut plain = Vec::new();
        encode_chunk(&mut plain, ChunkId(0), SchemaId(0), Codec::None, &events);
        let mut packed = Vec::new();
        encode_chunk(&mut packed, ChunkId(0), SchemaId(0), Codec::RailZ, &events);
        assert!(
            packed.len() < plain.len(),
            "railz ({}) should beat none ({})",
            packed.len(),
            plain.len()
        );
    }

    #[test]
    fn torn_tail_returns_none() {
        let events = make_events(10);
        let mut buf = Vec::new();
        encode_chunk(&mut buf, ChunkId(1), SchemaId(0), Codec::RailZ, &events);
        for cut in [0, 3, 7, buf.len() - 1] {
            assert!(decode_chunk(&buf[..cut]).unwrap().is_none(), "cut={cut}");
        }
    }

    #[test]
    fn bit_flip_is_corruption() {
        let events = make_events(10);
        let mut buf = Vec::new();
        encode_chunk(&mut buf, ChunkId(1), SchemaId(0), Codec::RailZ, &events);
        let mut bad = buf.clone();
        bad[20] ^= 0x01;
        assert!(decode_chunk(&bad).is_err());
    }

    #[test]
    fn multiple_frames_decode_sequentially() {
        let mut buf = Vec::new();
        encode_chunk(&mut buf, ChunkId(1), SchemaId(0), Codec::RailZ, &make_events(5));
        let first_len = buf.len();
        encode_chunk(&mut buf, ChunkId(2), SchemaId(0), Codec::RailZ, &make_events(7));
        let f1 = decode_chunk(&buf).unwrap().unwrap();
        assert_eq!(f1.frame_len, first_len);
        assert_eq!(f1.chunk.id, ChunkId(1));
        let f2 = decode_chunk(&buf[f1.frame_len..]).unwrap().unwrap();
        assert_eq!(f2.chunk.id, ChunkId(2));
        assert_eq!(f2.chunk.events.len(), 7);
    }

    #[test]
    fn header_is_versioned() {
        let mut buf = Vec::new();
        encode_chunk(&mut buf, ChunkId(3), SchemaId(0), Codec::None, &make_events(2));
        assert_eq!(buf[8], CHUNK_FORMAT_VERSION, "version byte leads the payload");
        assert_eq!(CHUNK_FORMAT_VERSION, 0x82, "wire constant is pinned");
    }

    #[test]
    fn legacy_v1_frame_is_clear_corruption() {
        // Hand-build a v1-style frame: payload starts with the chunk-id
        // varint (no version byte). CRC is valid, so decode reaches the
        // version check and must name the legacy format.
        let mut payload = Vec::new();
        put_uvarint(&mut payload, 7u64); // v1 chunk id
        put_uvarint(&mut payload, 0u64); // v1 schema id
        payload.push(0u8); // codec None
        put_uvarint(&mut payload, 0u64); // count
        let mut frame = Vec::new();
        frame.put_u32_le(payload.len() as u32 + 4);
        frame.put_u32_le(crc32c(&payload));
        frame.put_slice(&payload);
        let err = decode_chunk(&frame).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("legacy chunk format"), "got: {msg}");
    }

    #[test]
    fn unknown_future_version_is_corruption() {
        let mut buf = Vec::new();
        encode_chunk(&mut buf, ChunkId(1), SchemaId(0), Codec::None, &make_events(2));
        let payload_start = 8;
        buf[payload_start] = 0x80 | 9; // pretend v9
        // Re-patch the CRC so the version check (not the CRC) fires.
        let crc = crc32c(&buf[payload_start..]);
        buf[4..8].copy_from_slice(&crc.to_le_bytes());
        let err = decode_chunk(&buf).unwrap_err();
        assert!(format!("{err}").contains("unsupported chunk format version"));
    }

    #[test]
    fn mixed_arity_events_roundtrip() {
        let events = vec![
            Event::new(EventId(1), Timestamp::from_millis(10), vec![Value::Int(1)]),
            Event::new(
                EventId(2),
                Timestamp::from_millis(20),
                vec![Value::Int(2), Value::Str("x".into())],
            ),
            Event::new(EventId(3), Timestamp::from_millis(30), vec![]),
        ];
        for codec in [Codec::None, Codec::RailZ] {
            let mut buf = Vec::new();
            encode_chunk(&mut buf, ChunkId(0), SchemaId(0), codec, &events);
            let frame = decode_chunk(&buf).unwrap().unwrap();
            assert_eq!(frame.chunk.events, events);
        }
    }

    #[test]
    fn sorted_chunks_encode_smaller_than_v1_style_per_event_headers() {
        // The hoisted arity + uvarint deltas must beat per-event overhead:
        // uncompressed, a sorted uniform chunk saves ≥1 byte/event (arity).
        let events = make_events(500);
        let mut v2 = Vec::new();
        encode_chunk(&mut v2, ChunkId(0), SchemaId(0), Codec::None, &events);
        let mut per_event = 0usize;
        for e in &events {
            let mut one = Vec::new();
            railgun_types::encode::put_event(&mut one, e);
            per_event += one.len();
        }
        assert!(
            v2.len() + 500 <= per_event + 64,
            "v2 frame {} should undercut per-event encoding {}",
            v2.len(),
            per_event
        );
    }

    #[test]
    fn out_of_order_timestamps_survive_roundtrip() {
        // Transition chunks may hold late events; deltas can be negative.
        let events = vec![
            Event::new(EventId(1), Timestamp::from_millis(100), vec![]),
            Event::new(EventId(2), Timestamp::from_millis(90), vec![]),
            Event::new(EventId(3), Timestamp::from_millis(110), vec![]),
        ];
        let mut buf = Vec::new();
        encode_chunk(&mut buf, ChunkId(0), SchemaId(0), Codec::RailZ, &events);
        let frame = decode_chunk(&buf).unwrap().unwrap();
        assert_eq!(frame.chunk.events, events);
    }
}
