//! The event reservoir (paper §4.1.1).
//!
//! A reservoir stores **all events of one task processor** and hands them
//! back to windows through cheap, monotonic [`Cursor`]s. It has two parts:
//! a very small in-memory part (the open chunk receiving arrivals, chunks in
//! transition awaiting late events, and the bounded chunk cache) and a
//! potentially huge on-disk part (append-only segment files of compressed
//! chunks). Regardless of window size, only a tiny number of chunks is in
//! memory — the property behind "windows of years are equivalent to windows
//! of seconds" (§4.1.1, Figure 9a).
//!
//! ## Chunk lifecycle
//!
//! `Open` → (`Transition`) → `Pending` → `Durable`
//!
//! * the **open** chunk accepts arrivals (insert-sorted by timestamp);
//! * once it reaches the size target it **closes**; if a transition hold is
//!   configured it lingers, closed for new events but open for late ones
//!   (the watermark-like mechanism of §4.1.1);
//! * finalization encodes + compresses the chunk, pins it in the cache, and
//!   queues it for an asynchronous append to the active segment file;
//! * the background I/O thread appends it, records its location and unpins
//!   it (**durable**).
//!
//! ## Cursor semantics
//!
//! A cursor yields events in timestamp order with a monotonic *bound*:
//! `advance_upto(b)` yields every stored event with `ts < b` not yielded
//! before. Late events that land *behind* a cursor's bound are skipped by
//! that cursor (and the engine consistently excludes them from the window —
//! both sides compare against the same bound). Cursors never cross a chunk
//! that can still receive late events, so no event escapes expiry.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::Arc;

use parking_lot::Mutex;
use railgun_types::{
    Counter, Event, EventId, FastHashMap, FastHashSet, RailgunError, Recorder, Result, Schema,
    SchemaId, TimeDelta, Timestamp,
};

use crate::cache::{CacheStats, ChunkCache};
use crate::compress::Codec;
use crate::format::{encode_chunk, ChunkId, DecodedChunk};
use crate::registry::SchemaRegistry;
use crate::segment::{
    read_chunk_at, scan_segments, segment_file_name, ChunkLocation, FileNo, SegmentWriter,
};

/// What to do with an event older than the last finalized chunk (§4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatePolicy {
    /// Drop the event (default: accuracy-preserving).
    Discard,
    /// Rewrite its timestamp to the oldest acceptable position.
    Rewrite,
}

/// Reservoir tuning knobs.
#[derive(Debug, Clone)]
pub struct ReservoirConfig {
    /// Close the open chunk after this many events.
    pub chunk_target_events: usize,
    /// ... or after approximately this many bytes of event payload.
    pub chunk_target_bytes: usize,
    /// Seal segment files at this size (they become immutable).
    pub file_target_bytes: u64,
    /// Chunk cache capacity, in chunks (the paper's experiments use 220).
    pub cache_capacity_chunks: usize,
    /// Keep closed chunks open for late events for this long (event time).
    /// Zero disables the transition state.
    pub transition_hold: TimeDelta,
    /// Policy for events older than the last finalized chunk.
    pub late_policy: LatePolicy,
    /// Chunk compression codec.
    pub codec: Codec,
    /// Eagerly load the next chunk when a cursor enters a new one.
    pub prefetch: bool,
    /// Telemetry: append-latency recorder (off by default — a disabled
    /// recorder never reads the clock, keeping the PR-2 hot-path numbers
    /// intact; see `railgun_types::metrics`).
    pub append_recorder: Recorder,
    /// Telemetry: cold-drain chunk-miss counter, mirroring
    /// [`CacheStats::misses`](crate::CacheStats) into a handle the
    /// engine's metrics plane can read without reaching into the
    /// reservoir (off by default).
    pub chunk_miss_counter: Counter,
    /// Telemetry: events that landed via a multi-event
    /// [`Reservoir::append_batch`] (off by default).
    pub batch_events_counter: Counter,
}

impl Default for ReservoirConfig {
    fn default() -> Self {
        ReservoirConfig {
            chunk_target_events: 256,
            chunk_target_bytes: 64 << 10,
            file_target_bytes: 4 << 20,
            cache_capacity_chunks: 220,
            transition_hold: TimeDelta::ZERO,
            late_policy: LatePolicy::Discard,
            codec: Codec::RailZ,
            prefetch: true,
            append_recorder: Recorder::disabled(),
            chunk_miss_counter: Counter::disabled(),
            batch_events_counter: Counter::disabled(),
        }
    }
}

/// Outcome of [`Reservoir::append`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendOutcome {
    /// Stored normally.
    Appended,
    /// An event with this id is already in an in-memory chunk (§3.3 dedup).
    Duplicate,
    /// Older than the last finalized chunk; dropped per [`LatePolicy`].
    LateDiscarded,
    /// Older than the last finalized chunk; stored with a rewritten
    /// timestamp.
    LateRewritten(Timestamp),
}

/// Monotonic reservoir counters and gauges.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReservoirStats {
    pub appended: u64,
    pub duplicates: u64,
    pub late_discarded: u64,
    pub late_rewritten: u64,
    pub chunks_finalized: u64,
    pub files_sealed: u64,
    pub bytes_written: u64,
    pub durable_chunks: usize,
    pub open_events: usize,
    pub transition_events: usize,
    pub cached_events: usize,
    pub events_in_memory: usize,
    pub memory_bytes: usize,
    pub cursors: usize,
    pub cache: CacheStats,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChunkState {
    Open,
    Transition,
    /// Finalized, queued for the I/O thread, pinned in cache.
    Pending,
    /// On disk at the given location.
    Durable(ChunkLocation),
}

#[derive(Debug, Clone)]
struct ChunkMeta {
    id: ChunkId,
    first_ts: Timestamp,
    last_ts: Timestamp,
    count: u32,
    state: ChunkState,
}

/// A chunk whose events still live in a mutable `Vec` (open or transition).
struct MutableChunk {
    id: ChunkId,
    events: Vec<Event>,
    bytes: usize,
}

struct FileInfo {
    remaining_chunks: u32,
    sealed: bool,
}

#[derive(Debug, Clone)]
struct CursorPos {
    chunk: u64,
    idx: usize,
    bound: Timestamp,
    /// The decoded chunk this cursor currently iterates — held by the
    /// iterator itself, as in the paper's Figure 5 ("each iterator only
    /// needs one chunk in-memory"). The cache provides read-ahead.
    held: Option<Arc<DecodedChunk>>,
    /// Read-ahead already requested for the successor of the held chunk.
    prefetch_sent: bool,
    /// Bumped on every committed advance; lets the two-phase drain detect
    /// a concurrent advance of the same cursor across its unlocked I/O.
    seq: u64,
}

/// Deferred open-chunk metadata update accumulated across the fast-path
/// tail appends of one `append`/`append_batch` call (never escapes the
/// lock). `pending` is `(meta index, last ts, events added, first_ts when
/// the append found the chunk empty)`.
#[derive(Default)]
struct MetaDefer {
    pending: Option<(usize, Timestamp, u32, Option<Timestamp>)>,
}

struct Inner {
    /// Metadata for every live chunk, ids `first_chunk_id ..` contiguous.
    chunks: VecDeque<ChunkMeta>,
    first_chunk_id: u64,
    next_chunk_id: u64,
    open: Option<MutableChunk>,
    transition: Vec<MutableChunk>,
    cache: ChunkCache,
    files: FastHashMap<u64, FileInfo>,
    dedup: FastHashSet<EventId>,
    registry: SchemaRegistry,
    schema_id: SchemaId,
    cursors: FastHashMap<u64, CursorPos>,
    next_cursor_id: u64,
    max_seen_ts: Timestamp,
    min_acceptable_ts: Timestamp,
    stats: ReservoirStats,
}

enum IoCmd {
    /// Encode, compress and append a finalized chunk. Encoding happens on
    /// the I/O thread so the append path never pays it under the lock; the
    /// events are shared with the cache entry (pinned until durable).
    Persist(Arc<DecodedChunk>),
    /// Eagerly load a chunk into the cache (read-ahead, §4.1.1).
    Prefetch(ChunkId),
    /// Sync the active file and reply with (active_file, bytes) pairs of
    /// every file, for checkpointing.
    Barrier(SyncSender<Vec<(u64, u64, bool)>>),
    Shutdown,
}

struct Shared {
    dir: PathBuf,
    cfg: ReservoirConfig,
    inner: Mutex<Inner>,
    io_tx: Sender<IoCmd>,
}

/// The disk-backed event store of one task processor.
pub struct Reservoir {
    shared: Arc<Shared>,
    io_thread: Option<std::thread::JoinHandle<()>>,
}

impl Reservoir {
    /// Open (or create) a reservoir in `dir` with `schema` as the current
    /// event schema, recovering any chunks already on disk.
    pub fn open(dir: &Path, schema: Schema, cfg: ReservoirConfig) -> Result<Self> {
        std::fs::create_dir_all(dir)?;
        let mut registry = SchemaRegistry::open(dir)?;
        let schema_id = registry.register(schema)?;
        let (recovered, metas, next_file) = scan_segments(dir)?;
        let mut chunks = VecDeque::new();
        let mut files: FastHashMap<u64, FileInfo> = FastHashMap::default();
        let mut max_seen_ts = Timestamp::MIN;
        let mut min_acceptable_ts = Timestamp::MIN;
        let mut first_chunk_id = 0;
        let mut next_chunk_id = 0;
        for (i, rc) in recovered.iter().enumerate() {
            if i == 0 {
                first_chunk_id = rc.chunk.id.0;
            } else if rc.chunk.id.0 != next_chunk_id {
                return Err(RailgunError::Corruption(format!(
                    "non-contiguous chunk ids: expected {next_chunk_id}, found {}",
                    rc.chunk.id.0
                )));
            }
            next_chunk_id = rc.chunk.id.0 + 1;
            chunks.push_back(ChunkMeta {
                id: rc.chunk.id,
                first_ts: rc.chunk.first_ts,
                last_ts: rc.chunk.last_ts,
                count: rc.chunk.events.len() as u32,
                state: ChunkState::Durable(rc.location),
            });
            files
                .entry(rc.location.file.0)
                .or_insert(FileInfo {
                    remaining_chunks: 0,
                    sealed: false,
                })
                .remaining_chunks += 1;
            max_seen_ts = max_seen_ts.max(rc.chunk.last_ts);
            min_acceptable_ts = rc.chunk.last_ts;
        }
        // Every recovered file is effectively sealed: the writer starts a
        // fresh segment, so nothing will ever be appended to them again.
        let _ = metas;
        for fi in files.values_mut() {
            fi.sealed = true;
        }
        let stats = ReservoirStats {
            durable_chunks: chunks.len(),
            files_sealed: files.len() as u64,
            ..ReservoirStats::default()
        };
        let inner = Inner {
            chunks,
            first_chunk_id,
            next_chunk_id,
            open: None,
            transition: Vec::new(),
            cache: {
                let mut cache = ChunkCache::new(cfg.cache_capacity_chunks);
                cache.set_miss_counter(cfg.chunk_miss_counter.clone());
                cache
            },
            files,
            dedup: FastHashSet::default(),
            registry,
            schema_id,
            cursors: FastHashMap::default(),
            next_cursor_id: 0,
            max_seen_ts,
            min_acceptable_ts,
            stats,
        };
        let (io_tx, io_rx) = std::sync::mpsc::channel();
        let shared = Arc::new(Shared {
            dir: dir.to_path_buf(),
            cfg,
            inner: Mutex::new(inner),
            io_tx,
        });
        let io_shared = Arc::clone(&shared);
        let writer = SegmentWriter::new(dir, shared.cfg.file_target_bytes, next_file);
        let io_thread = std::thread::Builder::new()
            .name("railgun-reservoir-io".into())
            .spawn(move || io_loop(io_shared, writer, io_rx))
            .map_err(RailgunError::Io)?;
        Ok(Reservoir {
            shared,
            io_thread: Some(io_thread),
        })
    }

    /// Register a new (evolved) schema for subsequently written chunks.
    pub fn evolve_schema(&self, schema: Schema) -> Result<SchemaId> {
        let mut inner = self.shared.inner.lock();
        let id = inner.registry.register(schema)?;
        inner.schema_id = id;
        Ok(id)
    }

    /// The schema id new chunks are written under.
    pub fn current_schema(&self) -> SchemaId {
        self.shared.inner.lock().schema_id
    }

    /// Append one event. See [`AppendOutcome`].
    ///
    /// The common case — an event at or past the open chunk's tail — is a
    /// bounds-checked push plus O(1) metadata updates; only genuinely
    /// out-of-order arrivals pay the binary-search insert.
    ///
    /// When [`ReservoirConfig::append_recorder`] is enabled, the full
    /// append latency (lock wait included — that is what the task
    /// processor experiences) is recorded in microseconds.
    pub fn append(&self, event: Event) -> Result<AppendOutcome> {
        let timer = self.shared.cfg.append_recorder.start();
        let outcome = {
            let mut inner = self.shared.inner.lock();
            let inner = &mut *inner;
            let mut defer = MetaDefer::default();
            let out = self.append_locked(inner, event, &mut defer);
            Self::flush_meta_defer(inner, &mut defer);
            out
        };
        self.shared.cfg.append_recorder.finish(timer);
        outcome
    }

    /// Append a whole batch under **one** lock acquisition, with the
    /// open-chunk metadata refresh of consecutive tail appends deferred to
    /// one update per batch. Each event runs exactly the same per-event
    /// body as [`Reservoir::append`] — dedup, late policy, routing,
    /// cursor fixups and transition finalization are evaluated per event —
    /// so a batch leaves byte-identical chunks to appending the same
    /// events one at a time (the invariant the batched-ingest proptests
    /// pin).
    ///
    /// Returns one [`AppendOutcome`] per event, in order. An empty batch
    /// is a no-op. When the append recorder is enabled it receives one
    /// sample covering the whole batch.
    pub fn append_batch(
        &self,
        events: impl IntoIterator<Item = Event>,
    ) -> Result<Vec<AppendOutcome>> {
        let timer = self.shared.cfg.append_recorder.start();
        let result = {
            let mut inner = self.shared.inner.lock();
            let inner = &mut *inner;
            let mut defer = MetaDefer::default();
            let iter = events.into_iter();
            let mut outcomes = Vec::with_capacity(iter.size_hint().0);
            let mut res = Ok(());
            for event in iter {
                match self.append_locked(inner, event, &mut defer) {
                    Ok(o) => outcomes.push(o),
                    Err(e) => {
                        res = Err(e);
                        break;
                    }
                }
            }
            Self::flush_meta_defer(inner, &mut defer);
            if outcomes.len() >= 2 {
                self.shared
                    .cfg
                    .batch_events_counter
                    .add(outcomes.len() as u64);
            }
            res.map(|()| outcomes)
        };
        self.shared.cfg.append_recorder.finish(timer);
        result
    }

    /// The per-event append body, run with the reservoir lock held. Both
    /// [`Reservoir::append`] (batch-of-1) and [`Reservoir::append_batch`]
    /// funnel through here, which is what keeps batched and sequential
    /// ingest byte-identical by construction.
    fn append_locked(
        &self,
        inner: &mut Inner,
        mut event: Event,
        defer: &mut MetaDefer,
    ) -> Result<AppendOutcome> {
        // Single dedup probe: insert up front, roll back on the (rare)
        // late-discard path below.
        if !inner.dedup.insert(event.id) {
            inner.stats.duplicates += 1;
            return Ok(AppendOutcome::Duplicate);
        }
        let mut outcome = AppendOutcome::Appended;
        if event.ts < inner.min_acceptable_ts {
            match self.shared.cfg.late_policy {
                LatePolicy::Discard => {
                    inner.dedup.remove(&event.id);
                    inner.stats.late_discarded += 1;
                    return Ok(AppendOutcome::LateDiscarded);
                }
                LatePolicy::Rewrite => {
                    let new_ts = inner.min_acceptable_ts;
                    event = Event::new(event.id, new_ts, event.values().to_vec());
                    inner.stats.late_rewritten += 1;
                    outcome = AppendOutcome::LateRewritten(new_ts);
                }
            }
        }
        inner.max_seen_ts = inner.max_seen_ts.max(event.ts);

        // Routing: events at or above the open-chunk boundary (the newest
        // transition chunk's last timestamp, or the finalized frontier when
        // no transition chunks exist) go to the open chunk; older ones go to
        // the newest transition chunk that can admit them.
        let boundary = inner
            .transition
            .last()
            .and_then(|t| t.events.last().map(|e| e.ts))
            .unwrap_or(inner.min_acceptable_ts);
        inner.stats.appended += 1;
        if event.ts >= boundary {
            if inner.open.is_none() {
                let id = ChunkId(inner.next_chunk_id);
                inner.next_chunk_id += 1;
                inner.chunks.push_back(ChunkMeta {
                    id,
                    first_ts: event.ts,
                    last_ts: event.ts,
                    count: 0,
                    state: ChunkState::Open,
                });
                inner.open = Some(MutableChunk {
                    id,
                    events: Vec::with_capacity(self.shared.cfg.chunk_target_events),
                    bytes: 0,
                });
            }
            let open = inner.open.as_mut().expect("just ensured");
            let id = open.id;
            let pos = insert_sorted(open, event);
            let oi = (id.0 - inner.first_chunk_id) as usize;
            if pos.appended {
                let was_empty = pos.index == 0;
                // Fast path: tail push. The O(1) metadata refresh is
                // *deferred* — consecutive tail appends of a batch collapse
                // into one refresh at the batch boundary — and the cursor
                // fixup loop is skipped entirely when no cursor is live
                // (fixup is still required with cursors: one may sit on
                // this chunk with a bound past the new event).
                Self::defer_tail_meta(inner, defer, oi, pos.ts, was_empty);
                if !inner.cursors.is_empty() {
                    Self::fixup_cursors(inner, id, &pos);
                }
            } else {
                // Out-of-order insert: apply any deferred tail updates
                // first, then recompute the whole meta from the events.
                Self::flush_meta_defer(inner, defer);
                Self::fixup_cursors(inner, id, &pos);
                Self::refresh_meta_open(inner, oi);
            }
            self.maybe_close_open(inner, defer);
        } else {
            // `transition` is non-empty here: with no transition chunks the
            // boundary equals `min_acceptable_ts`, and anything below that
            // was already handled by the late-event policy above.
            //
            // Route to the *oldest* transition chunk whose last event is at
            // or after `ts`. Gap timestamps go to the *newer* neighbour;
            // this guarantees that any insert landing behind a cursor has a
            // timestamp below that cursor's bound (see the fixup in
            // `fixup_cursors`), so cursors can safely move past drained
            // transition chunks.
            Self::flush_meta_defer(inner, defer);
            let ti = inner
                .transition
                .iter()
                .position(|t| t.events.last().is_some_and(|e| e.ts >= event.ts))
                .unwrap_or(inner.transition.len() - 1);
            let id = inner.transition[ti].id;
            let pos = insert_sorted(&mut inner.transition[ti], event);
            Self::fixup_cursors(inner, id, &pos);
            Self::refresh_meta(inner, ti);
        }
        self.finalize_ready_transitions(inner)?;
        Ok(outcome)
    }

    /// Record one fast-path tail append for chunk meta slot `mi`, merging
    /// with an already-pending update for the same slot. A pending update
    /// for a *different* slot (the open chunk rolled over) is flushed
    /// first.
    fn defer_tail_meta(
        inner: &mut Inner,
        defer: &mut MetaDefer,
        mi: usize,
        ts: Timestamp,
        was_empty: bool,
    ) {
        match &mut defer.pending {
            Some((i, last, added, _first)) if *i == mi => {
                *last = ts;
                *added += 1;
            }
            _ => {
                Self::flush_meta_defer(inner, defer);
                defer.pending = Some((mi, ts, 1, was_empty.then_some(ts)));
            }
        }
    }

    /// Apply (and clear) a pending deferred open-chunk meta update.
    fn flush_meta_defer(inner: &mut Inner, defer: &mut MetaDefer) {
        if let Some((mi, last, added, first)) = defer.pending.take() {
            let meta = &mut inner.chunks[mi];
            meta.last_ts = last;
            meta.count += added;
            if let Some(f) = first {
                meta.first_ts = f;
            }
        }
    }

    /// After inserting at sorted position `pos` in chunk `chunk`, cursors
    /// whose bound already passed the event's position skip it (see module
    /// docs for why this stays consistent with the engine's window bound).
    ///
    /// This includes a cursor parked *at the head* of a freshly created
    /// open chunk: if its committed bound is already above the new event's
    /// timestamp, the event counts as late relative to that cursor and is
    /// skipped, even though nothing at that index was ever yielded. Callers
    /// that want every event must therefore keep their bounds at or below
    /// the ingest frontier while appends are in flight.
    fn fixup_cursors(inner: &mut Inner, chunk: ChunkId, pos: &InsertPos) {
        for cur in inner.cursors.values_mut() {
            if cur.chunk == chunk.0 && pos.ts < cur.bound {
                debug_assert!(pos.index <= cur.idx);
                cur.idx += 1;
            }
        }
    }

    fn refresh_meta(inner: &mut Inner, transition_idx: usize) {
        let t = &inner.transition[transition_idx];
        let (id, first, last, count) = (
            t.id,
            t.events.first().map(|e| e.ts),
            t.events.last().map(|e| e.ts),
            t.events.len(),
        );
        let mi = (id.0 - inner.first_chunk_id) as usize;
        let meta = &mut inner.chunks[mi];
        if let (Some(f), Some(l)) = (first, last) {
            meta.first_ts = f;
            meta.last_ts = l;
            meta.count = count as u32;
        }
    }

    fn refresh_meta_open(inner: &mut Inner, meta_idx: usize) {
        let (first, last, count) = {
            let open = inner.open.as_ref().expect("open chunk");
            (
                open.events.first().map(|e| e.ts),
                open.events.last().map(|e| e.ts),
                open.events.len(),
            )
        };
        let meta = &mut inner.chunks[meta_idx];
        if let (Some(f), Some(l)) = (first, last) {
            meta.first_ts = f;
            meta.last_ts = l;
            meta.count = count as u32;
        }
    }

    fn maybe_close_open(&self, inner: &mut Inner, defer: &mut MetaDefer) {
        let close = match &inner.open {
            Some(o) => {
                o.events.len() >= self.shared.cfg.chunk_target_events
                    || o.bytes >= self.shared.cfg.chunk_target_bytes
            }
            None => false,
        };
        if close {
            // The chunk leaves the open state: its meta must be current
            // before any transition/finalize bookkeeping reads it.
            Self::flush_meta_defer(inner, defer);
            let open = inner.open.take().expect("checked");
            let mi = (open.id.0 - inner.first_chunk_id) as usize;
            inner.chunks[mi].state = ChunkState::Transition;
            inner.transition.push(open);
        }
    }

    /// Finalize transition chunks the watermark has passed: encode, pin in
    /// cache, hand to the I/O thread. With a zero hold, chunks finalize the
    /// moment they close (no transition state).
    fn finalize_ready_transitions(&self, inner: &mut Inner) -> Result<()> {
        let hold = self.shared.cfg.transition_hold;
        while let Some(t) = inner.transition.first() {
            let last_ts = t.events.last().map(|e| e.ts).unwrap_or(Timestamp::MIN);
            let ready = !hold.is_positive() || last_ts + hold < inner.max_seen_ts;
            if !ready {
                break;
            }
            let t = inner.transition.remove(0);
            self.finalize_chunk(inner, t)?;
        }
        Ok(())
    }

    /// Finalize a closed chunk: pin its events in the cache and hand them to
    /// the I/O thread, which encodes, compresses and appends them. Keeping
    /// serialization off this path means `append` never stalls behind a
    /// chunk close for more than the O(1) bookkeeping here.
    fn finalize_chunk(&self, inner: &mut Inner, chunk: MutableChunk) -> Result<()> {
        debug_assert!(!chunk.events.is_empty(), "chunks close only when non-empty");
        for e in &chunk.events {
            inner.dedup.remove(&e.id);
        }
        let first_ts = chunk.events.first().expect("non-empty").ts;
        let last_ts = chunk.events.last().expect("non-empty").ts;
        inner.stats.chunks_finalized += 1;
        inner.min_acceptable_ts = inner.min_acceptable_ts.max(last_ts);
        let decoded = Arc::new(DecodedChunk {
            id: chunk.id,
            schema: inner.schema_id,
            first_ts,
            last_ts,
            events: chunk.events,
        });
        inner.cache.insert_pinned(Arc::clone(&decoded));
        let mi = (chunk.id.0 - inner.first_chunk_id) as usize;
        inner.chunks[mi].state = ChunkState::Pending;
        self.shared
            .io_tx
            .send(IoCmd::Persist(decoded))
            .map_err(|_| RailgunError::Storage("reservoir io thread is gone".into()))?;
        Ok(())
    }

    /// Force-close the open chunk (used before checkpoints and in tests).
    pub fn flush_open_chunk(&self) -> Result<()> {
        let mut inner = self.shared.inner.lock();
        let inner = &mut *inner;
        if let Some(open) = inner.open.take() {
            if open.events.is_empty() {
                // Remove the empty meta we created for it.
                inner.chunks.pop_back();
                inner.next_chunk_id -= 1;
            } else {
                let mi = (open.id.0 - inner.first_chunk_id) as usize;
                inner.chunks[mi].state = ChunkState::Transition;
                inner.transition.push(open);
            }
        }
        // Finalize *everything* in transition regardless of watermark.
        while !inner.transition.is_empty() {
            let t = inner.transition.remove(0);
            self.finalize_chunk(inner, t)?;
        }
        Ok(())
    }

    /// Block until all queued chunk writes are on disk.
    pub fn flush_io(&self) -> Result<Vec<(u64, u64, bool)>> {
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        self.shared
            .io_tx
            .send(IoCmd::Barrier(tx))
            .map_err(|_| RailgunError::Storage("reservoir io thread is gone".into()))?;
        rx.recv()
            .map_err(|_| RailgunError::Storage("reservoir io thread died".into()))
    }

    /// Create a cursor positioned at the first event with `ts >= from`.
    ///
    /// Seeding follows the same lock discipline as the two-phase drain: if
    /// the starting chunk is cold, the cursor is registered first (pinning
    /// the chunk against truncation), then the segment read + decompression
    /// happen without the lock, and the seek index is published afterwards.
    pub fn cursor_at(&self, from: Timestamp) -> Cursor {
        let mut guard = self.shared.inner.lock();
        let inner = &mut *guard;
        let mut pos = CursorPos {
            chunk: inner.next_chunk_id,
            idx: 0,
            bound: Timestamp::MIN,
            held: None,
            prefetch_sent: false,
            seq: 0,
        };
        let mut cold: Option<ChunkLocation> = None;
        // Find the first chunk whose last event is >= from.
        let start = inner
            .chunks
            .iter()
            .find(|m| m.count > 0 && m.last_ts >= from)
            .map(|m| m.id);
        if let Some(chunk_id) = start {
            pos.chunk = chunk_id.0;
            match Self::resident_seek(inner, chunk_id, from) {
                Some(idx) => pos.idx = idx,
                // Not resident: seek unlocked below. On a read error the
                // index stays 0, matching the old degraded behaviour.
                None => cold = durable_location(inner, chunk_id).ok(),
            }
        }
        let chunk_no = pos.chunk;
        let id = inner.next_cursor_id;
        inner.next_cursor_id += 1;
        inner.cursors.insert(id, pos);
        if let Some(loc) = cold {
            drop(guard);
            if let Ok(decoded) = read_chunk_at(&self.shared.dir, loc) {
                let decoded = Arc::new(decoded);
                let mut inner = self.shared.inner.lock();
                let inner = &mut *inner;
                if chunk_no >= inner.first_chunk_id && !inner.cache.contains(ChunkId(chunk_no))
                {
                    inner.cache.insert(Arc::clone(&decoded));
                }
                if let Some(cur) = inner.cursors.get_mut(&id) {
                    // The handle is not returned yet, so nothing advanced
                    // the cursor; fixups don't apply at bound MIN either.
                    debug_assert!(cur.chunk == chunk_no && cur.idx == 0);
                    cur.idx = decoded.events.partition_point(|e| e.ts < from);
                    cur.held = Some(decoded);
                }
            }
        }
        Cursor {
            shared: Arc::clone(&self.shared),
            id,
        }
    }

    /// Cursor positioned at the very beginning of the stored stream.
    pub fn cursor_at_start(&self) -> Cursor {
        self.cursor_at(Timestamp::MIN)
    }

    /// Seek index of the first event with `ts >= from` in `chunk`, if the
    /// chunk is resident in memory (open, transition, or cached).
    fn resident_seek(inner: &mut Inner, chunk: ChunkId, from: Timestamp) -> Option<usize> {
        if let Some(open) = &inner.open {
            if open.id == chunk {
                return Some(open.events.partition_point(|e| e.ts < from));
            }
        }
        if let Some(t) = inner.transition.iter().find(|t| t.id == chunk) {
            return Some(t.events.partition_point(|e| e.ts < from));
        }
        inner
            .cache
            .get(chunk)
            .map(|c| c.events.partition_point(|e| e.ts < from))
    }

    /// Drop durable chunks entirely below `before` (event time), deleting
    /// sealed segment files that no longer hold live chunks. Chunks still
    /// ahead of any cursor are never dropped.
    pub fn truncate_before(&self, before: Timestamp) -> Result<usize> {
        let mut inner = self.shared.inner.lock();
        let inner = &mut *inner;
        let min_cursor_chunk = inner
            .cursors
            .values()
            .map(|c| c.chunk)
            .min()
            .unwrap_or(u64::MAX);
        let mut dropped = 0;
        while let Some(front) = inner.chunks.front() {
            let loc = match front.state {
                ChunkState::Durable(loc) => loc,
                _ => break,
            };
            if front.last_ts >= before || front.id.0 >= min_cursor_chunk {
                break;
            }
            let id = front.id;
            inner.chunks.pop_front();
            inner.first_chunk_id = id.0 + 1;
            inner.cache.remove(id);
            inner.stats.durable_chunks = inner.stats.durable_chunks.saturating_sub(1);
            dropped += 1;
            if let Some(fi) = inner.files.get_mut(&loc.file.0) {
                fi.remaining_chunks = fi.remaining_chunks.saturating_sub(1);
                if fi.remaining_chunks == 0 && fi.sealed {
                    std::fs::remove_file(
                        self.shared.dir.join(segment_file_name(loc.file)),
                    )
                    .ok();
                    inner.files.remove(&loc.file.0);
                    inner.stats.files_sealed = inner.stats.files_sealed.saturating_sub(1);
                }
            }
        }
        Ok(dropped)
    }

    /// Checkpoint the durable state into `target` (§4.1.3): sealed segment
    /// files are hard-linked, the active file is copied up to its durable
    /// length, and the schema registry is copied. Events still in memory
    /// (open/transition) are *not* included — they are recovered by
    /// replaying the messaging layer from the checkpointed offset.
    pub fn checkpoint(&self, target: &Path) -> Result<()> {
        let files = self.flush_io()?;
        std::fs::create_dir_all(target)?;
        let _inner = self.shared.inner.lock(); // freeze truncation during copy
        for (file_no, bytes, sealed) in files {
            let name = segment_file_name(FileNo(file_no));
            let from = self.shared.dir.join(&name);
            let to = target.join(&name);
            if sealed {
                if std::fs::hard_link(&from, &to).is_err() {
                    std::fs::copy(&from, &to)?;
                }
            } else {
                // Copy only the durable prefix of the active file.
                let data = std::fs::read(&from)?;
                let durable = &data[..bytes.min(data.len() as u64) as usize];
                std::fs::write(&to, durable)?;
            }
        }
        let reg = self.shared.dir.join(crate::registry::REGISTRY_FILE);
        if reg.exists() {
            std::fs::copy(&reg, target.join(crate::registry::REGISTRY_FILE))?;
        }
        Ok(())
    }

    /// Statistics snapshot.
    ///
    /// Every field is either a maintained counter or an O(1) gauge (the
    /// cache keeps incremental byte/event accounting; `durable_chunks` and
    /// `files_sealed` are updated at state transitions), so polling stats
    /// never walks chunks or cached events and cannot stall ingest — the
    /// only remaining per-call work is O(#transition chunks), which the
    /// watermark keeps tiny.
    pub fn stats(&self) -> ReservoirStats {
        let inner = self.shared.inner.lock();
        let mut s = inner.stats.clone();
        s.cache = inner.cache.stats();
        s.open_events = inner.open.as_ref().map_or(0, |o| o.events.len());
        s.transition_events = inner.transition.iter().map(|t| t.events.len()).sum();
        s.cached_events = inner.cache.resident_events();
        s.events_in_memory = s.open_events + s.transition_events + s.cached_events;
        s.memory_bytes = inner.cache.heap_bytes()
            + inner.open.as_ref().map_or(0, |o| o.bytes)
            + inner.transition.iter().map(|t| t.bytes).sum::<usize>();
        s.cursors = inner.cursors.len();
        s
    }

    /// Highest event timestamp ever appended.
    pub fn max_seen_ts(&self) -> Timestamp {
        self.shared.inner.lock().max_seen_ts
    }
}

impl Drop for Reservoir {
    fn drop(&mut self) {
        let _ = self.shared.io_tx.send(IoCmd::Shutdown);
        if let Some(t) = self.io_thread.take() {
            let _ = t.join();
        }
    }
}

struct InsertPos {
    index: usize,
    ts: Timestamp,
    /// True when the event was pushed at the tail (the append fast path).
    appended: bool,
}

/// Insert an event into a mutable chunk keeping timestamp order (equal
/// timestamps keep arrival order). Returns the insert position.
///
/// In-order arrivals (`ts` at or past the current tail) take a plain push;
/// only out-of-order events pay the binary search + memmove. Both paths
/// produce the identical final ordering (pinned by a property test below).
fn insert_sorted(chunk: &mut MutableChunk, event: Event) -> InsertPos {
    let ts = event.ts;
    chunk.bytes += event.heap_size();
    match chunk.events.last() {
        Some(last) if ts < last.ts => {
            let idx = chunk.events.partition_point(|e| e.ts <= ts);
            chunk.events.insert(idx, event);
            InsertPos {
                index: idx,
                ts,
                appended: false,
            }
        }
        _ => {
            chunk.events.push(event);
            InsertPos {
                index: chunk.events.len() - 1,
                ts,
                appended: true,
            }
        }
    }
}

/// Load a durable/pending chunk through the cache (demand path). Eager
/// read-ahead of adjacent chunks happens asynchronously on the I/O thread
/// (§4.1.1's "iterators eagerly load adjacent chunks into cache").
fn load_chunk(shared: &Shared, inner: &mut Inner, chunk: ChunkId) -> Result<Arc<DecodedChunk>> {
    if let Some(hit) = inner.cache.get(chunk) {
        return Ok(hit);
    }
    let loc = durable_location(inner, chunk)?;
    let decoded = Arc::new(read_chunk_at(&shared.dir, loc)?);
    inner.cache.insert(Arc::clone(&decoded));
    Ok(decoded)
}

fn durable_location(inner: &Inner, chunk: ChunkId) -> Result<ChunkLocation> {
    if chunk.0 < inner.first_chunk_id {
        return Err(RailgunError::Storage(format!(
            "chunk {} was truncated",
            chunk.0
        )));
    }
    let mi = (chunk.0 - inner.first_chunk_id) as usize;
    match inner.chunks.get(mi).map(|m| m.state) {
        Some(ChunkState::Durable(loc)) => Ok(loc),
        other => Err(RailgunError::Storage(format!(
            "chunk {} is not durable ({other:?})",
            chunk.0
        ))),
    }
}

/// A monotonic reading position over a reservoir's event stream.
///
/// Cursors are created by [`Reservoir::cursor_at`]; windows use one for
/// their tail (expiring events) and, when delayed, one for their head.
pub struct Cursor {
    shared: Arc<Shared>,
    id: u64,
}

impl Cursor {
    /// Yield every not-yet-yielded event with `ts < bound` into `out`,
    /// advancing the cursor. Bounds are monotonic: a smaller-or-equal bound
    /// than a previous call yields nothing.
    ///
    /// ## Two-phase drain (lock discipline)
    ///
    /// Under the reservoir lock, the cursor only ever **resolves positions
    /// and batch-copies from chunks already in memory** (open, transition,
    /// held, or cached) using `partition_point` + slice extends. When it
    /// runs into a durable chunk that is not resident, it *commits its
    /// position, releases the lock*, performs the segment read + RailZ
    /// decompression unlocked, then re-acquires the lock to publish the
    /// chunk and continue. A cursor catching up on cold chunks therefore
    /// never blocks `append`.
    ///
    /// The committed position keeps truncation away from the in-flight
    /// chunk, and a sequence number detects a concurrent advance of the
    /// *same* cursor across the unlocked window (events are then yielded to
    /// exactly one of the callers; each event is still yielded once).
    pub fn advance_upto_into(&self, bound: Timestamp, out: &mut Vec<Event>) {
        let mut guard = self.shared.inner.lock();
        loop {
            let inner = &mut *guard;
            let mut pos = match inner.cursors.get(&self.id) {
                Some(p) => p.clone(),
                None => return,
            };
            if pos.bound >= bound {
                // Monotonic-bound rejection — either this call's bound is
                // not ahead of the cursor, or a concurrent caller with this
                // bound (or larger) completed meanwhile and yielded the
                // remaining events below it.
                return;
            }
            // Phase 1 (locked): drain everything resident in memory. The
            // position (chunk, idx) commits progressively, but the bound
            // only commits once the drain fully reaches it — a failed cold
            // load below must leave the bound where it was, so a later call
            // at the same bound retries instead of silently skipping.
            let pending = self.drain_resident(inner, &mut pos, bound, out);
            if pending.is_none() {
                pos.bound = bound;
            }
            pos.seq = pos.seq.wrapping_add(1);
            let my_seq = pos.seq;
            inner.cursors.insert(self.id, pos);
            let Some((chunk_no, loc)) = pending else {
                return;
            };
            // Phase 2 (unlocked): cold chunk — disk read + decompression
            // happen without the lock, so ingest keeps flowing.
            drop(guard);
            let decoded = match read_chunk_at(&self.shared.dir, loc) {
                Ok(d) => Arc::new(d),
                Err(_) => return, // bound not committed; a later call retries
            };
            guard = self.shared.inner.lock();
            let inner = &mut *guard;
            if chunk_no >= inner.first_chunk_id && !inner.cache.contains(ChunkId(chunk_no)) {
                inner.cache.insert(Arc::clone(&decoded));
            }
            match inner.cursors.get_mut(&self.id) {
                Some(cur) if cur.seq == my_seq && cur.chunk == chunk_no => {
                    cur.held = Some(decoded);
                    cur.prefetch_sent = false;
                }
                Some(_) => {} // concurrently moved; next iteration re-reads
                None => return,
            }
        }
    }

    /// Locked phase of [`Cursor::advance_upto_into`]: batch-copy events
    /// below `bound` from in-memory chunks into `out`, advancing `pos`.
    /// Returns the location of the first non-resident chunk blocking
    /// progress, if any.
    fn drain_resident(
        &self,
        inner: &mut Inner,
        pos: &mut CursorPos,
        bound: Timestamp,
        out: &mut Vec<Event>,
    ) -> Option<(u64, ChunkLocation)> {
        loop {
            if pos.chunk >= inner.next_chunk_id || pos.chunk < inner.first_chunk_id {
                return None;
            }
            let mi = (pos.chunk - inner.first_chunk_id) as usize;
            let state = inner.chunks[mi].state;
            match state {
                ChunkState::Open => {
                    pos.held = None;
                    let open = inner.open.as_ref().expect("open meta implies open chunk");
                    drain_slice(&open.events, pos, bound, out);
                    return None; // never cross the open chunk
                }
                ChunkState::Transition => {
                    pos.held = None;
                    let t = inner
                        .transition
                        .iter()
                        .find(|t| t.id.0 == pos.chunk)
                        .expect("transition meta implies transition chunk");
                    if drain_slice(&t.events, pos, bound, out) {
                        // Fully drained: safe to move on. Late events that
                        // land behind us are below our bound by the routing
                        // invariant and get skipped via `fixup_cursors`.
                        pos.chunk += 1;
                        pos.idx = 0;
                    } else {
                        return None;
                    }
                }
                ChunkState::Pending | ChunkState::Durable(_) => {
                    // Figure 5: the iterator holds its current chunk; the
                    // cache is only consulted on chunk transitions.
                    let decoded = match &pos.held {
                        Some(held) if held.id.0 == pos.chunk => Arc::clone(held),
                        _ => match inner.cache.get(ChunkId(pos.chunk)) {
                            Some(hit) => {
                                pos.held = Some(Arc::clone(&hit));
                                pos.prefetch_sent = false;
                                hit
                            }
                            None => {
                                // Cold: hand the location to phase 2.
                                // Pending chunks are pinned in cache, so a
                                // miss here implies a durable location.
                                match durable_location(inner, ChunkId(pos.chunk)) {
                                    Ok(loc) => return Some((pos.chunk, loc)),
                                    Err(_) => return None,
                                }
                            }
                        },
                    };
                    let events = &decoded.events;
                    let done = drain_slice(events, pos, bound, out);
                    // Eager read-ahead, issued just-in-time (when the
                    // iterator is most of the way through its chunk) so
                    // prefetched chunks are not evicted before use.
                    if self.shared.cfg.prefetch
                        && !pos.prefetch_sent
                        && pos.idx * 4 >= events.len() * 3
                    {
                        pos.prefetch_sent = true;
                        let next = ChunkId(pos.chunk + 1);
                        if !inner.cache.contains(next) {
                            let _ = self.shared.io_tx.send(IoCmd::Prefetch(next));
                        }
                    }
                    if done {
                        pos.chunk += 1;
                        pos.idx = 0;
                        pos.held = None;
                    } else {
                        return None;
                    }
                }
            }
        }
    }

    /// Convenience wrapper collecting into a fresh vector.
    pub fn advance_upto(&self, bound: Timestamp) -> Vec<Event> {
        let mut out = Vec::new();
        self.advance_upto_into(bound, &mut out);
        out
    }

    /// The timestamp of the next event this cursor would yield, if visible.
    pub fn peek_ts(&self) -> Option<Timestamp> {
        let mut inner = self.shared.inner.lock();
        let inner = &mut *inner;
        let pos = inner.cursors.get(&self.id)?.clone();
        if pos.chunk >= inner.next_chunk_id || pos.chunk < inner.first_chunk_id {
            return None;
        }
        let mi = (pos.chunk - inner.first_chunk_id) as usize;
        match inner.chunks[mi].state {
            ChunkState::Open => inner
                .open
                .as_ref()
                .and_then(|o| o.events.get(pos.idx))
                .map(|e| e.ts),
            ChunkState::Transition => inner
                .transition
                .iter()
                .find(|t| t.id.0 == pos.chunk)
                .and_then(|t| t.events.get(pos.idx))
                .map(|e| e.ts),
            ChunkState::Pending | ChunkState::Durable(_) => {
                load_chunk(&self.shared, inner, ChunkId(pos.chunk))
                    .ok()
                    .and_then(|c| c.events.get(pos.idx).map(|e| e.ts))
            }
        }
    }
}

impl Drop for Cursor {
    fn drop(&mut self) {
        self.shared.inner.lock().cursors.remove(&self.id);
    }
}

/// Batch-copy every event with `ts < bound` from `events[pos.idx..]` into
/// `out` (one `partition_point` + one slice extend instead of a per-event
/// compare-and-push loop). Returns true when the chunk is fully drained.
fn drain_slice(events: &[Event], pos: &mut CursorPos, bound: Timestamp, out: &mut Vec<Event>) -> bool {
    let start = pos.idx.min(events.len());
    let end = start + events[start..].partition_point(|e| e.ts < bound);
    out.extend_from_slice(&events[start..end]);
    pos.idx = end;
    end == events.len()
}

fn io_loop(shared: Arc<Shared>, mut writer: SegmentWriter, rx: Receiver<IoCmd>) {
    let mut frame = Vec::new();
    while let Ok(cmd) = rx.recv() {
        match cmd {
            IoCmd::Persist(decoded) => {
                // Encode + compress here, off the append path. The events
                // are shared with the pinned cache entry, so readers are
                // already served while this runs.
                frame.clear();
                encode_chunk(
                    &mut frame,
                    decoded.id,
                    decoded.schema,
                    shared.cfg.codec,
                    &decoded.events,
                );
                let chunk = decoded.id;
                match writer.append(&frame, decoded.first_ts, decoded.last_ts) {
                    Ok(loc) => {
                        let mut inner = shared.inner.lock();
                        let inner = &mut *inner;
                        inner.stats.bytes_written += frame.len() as u64;
                        if chunk.0 >= inner.first_chunk_id {
                            let mi = (chunk.0 - inner.first_chunk_id) as usize;
                            if let Some(meta) = inner.chunks.get_mut(mi) {
                                meta.state = ChunkState::Durable(loc);
                                inner.stats.durable_chunks += 1;
                            }
                        }
                        let entry =
                            inner.files.entry(loc.file.0).or_insert(FileInfo {
                                remaining_chunks: 0,
                                sealed: false,
                            });
                        entry.remaining_chunks += 1;
                        for sealed in writer.take_sealed() {
                            if let Some(fi) = inner.files.get_mut(&sealed.file.0) {
                                if !fi.sealed {
                                    fi.sealed = true;
                                    inner.stats.files_sealed += 1;
                                }
                            }
                        }
                        inner.cache.unpin(chunk);
                    }
                    Err(_) => {
                        // Keep the chunk pinned in cache: its events remain
                        // readable; durability is degraded until restart.
                    }
                }
            }
            IoCmd::Prefetch(chunk) => {
                // Snapshot the location under the lock, read without it.
                let loc = {
                    let inner = shared.inner.lock();
                    if inner.cache.contains(chunk) {
                        continue;
                    }
                    match durable_location(&inner, chunk) {
                        Ok(loc) => loc,
                        Err(_) => continue,
                    }
                };
                if let Ok(decoded) = read_chunk_at(&shared.dir, loc) {
                    let mut inner = shared.inner.lock();
                    if !inner.cache.contains(chunk) {
                        inner.cache.insert_prefetched(Arc::new(decoded));
                    }
                }
            }
            IoCmd::Barrier(reply) => {
                let _ = writer.sync();
                let metas = writer.metas();
                let mut files: Vec<(u64, u64, bool)> = metas
                    .iter()
                    .map(|m| (m.file.0, m.bytes, m.sealed))
                    .collect();
                // Include files recovered from a previous run (not owned by
                // this writer instance).
                let inner = shared.inner.lock();
                for (no, fi) in &inner.files {
                    if !files.iter().any(|(n, _, _)| n == no) {
                        let path = shared.dir.join(segment_file_name(FileNo(*no)));
                        let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                        files.push((*no, bytes, fi.sealed));
                    }
                }
                drop(inner);
                let _ = reply.send(files);
            }
            IoCmd::Shutdown => break,
        }
    }
    let _ = writer.sync();
}

#[cfg(test)]
mod insert_path_tests {
    use super::*;
    use proptest::prelude::*;
    use railgun_types::Value;

    /// The pre-fast-path insert: always binary-search + `Vec::insert`.
    fn insert_reference(events: &mut Vec<Event>, event: Event) {
        let idx = events.partition_point(|e| e.ts <= event.ts);
        events.insert(idx, event);
    }

    fn chunk_bytes(events: &[Event]) -> Vec<u8> {
        let mut out = Vec::new();
        encode_chunk(
            &mut out,
            ChunkId(9),
            SchemaId(1),
            crate::compress::Codec::RailZ,
            events,
        );
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The append fast path and the reference insert path must produce
        /// byte-identical finalized chunks for any arrival order, including
        /// shuffled-late inputs and timestamp ties (which keep arrival
        /// order on both paths).
        #[test]
        fn fast_path_matches_reference_insert(
            lateness in proptest::collection::vec(0i64..40, 1..200),
        ) {
            let mut fast = MutableChunk {
                id: ChunkId(9),
                events: Vec::new(),
                bytes: 0,
            };
            let mut reference: Vec<Event> = Vec::new();
            for (i, late) in lateness.iter().enumerate() {
                // Mostly in-order stream with a sprinkle of late arrivals
                // (ties included: `late` may equal the step gap exactly).
                let ts = i as i64 * 10 - late;
                let e = Event::new(
                    EventId(i as u64),
                    Timestamp::from_millis(ts),
                    vec![Value::Int(i as i64)],
                );
                insert_sorted(&mut fast, e.clone());
                insert_reference(&mut reference, e);
            }
            prop_assert_eq!(&fast.events, &reference);
            prop_assert_eq!(chunk_bytes(&fast.events), chunk_bytes(&reference));
        }
    }

    #[test]
    fn tail_ties_take_the_fast_path() {
        let mut chunk = MutableChunk {
            id: ChunkId(0),
            events: Vec::new(),
            bytes: 0,
        };
        let e = |id: u64, ts: i64| {
            Event::new(EventId(id), Timestamp::from_millis(ts), vec![Value::Int(id as i64)])
        };
        assert!(insert_sorted(&mut chunk, e(1, 10)).appended);
        assert!(insert_sorted(&mut chunk, e(2, 10)).appended, "equal ts appends at tail");
        assert!(!insert_sorted(&mut chunk, e(3, 5)).appended, "late event takes slow path");
        assert!(insert_sorted(&mut chunk, e(4, 10)).appended);
        let ids: Vec<u64> = chunk.events.iter().map(|ev| ev.id.0).collect();
        assert_eq!(ids, vec![3, 1, 2, 4], "ties keep arrival order");
    }
}
