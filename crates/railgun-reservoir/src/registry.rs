//! Schema registry: versioned event schemas for chunk (de)serialization.
//!
//! Chunks persist the [`SchemaId`] they were written under (§4.1.1); when a
//! stream's schema evolves, new chunks reference the new id while old chunks
//! keep deserializing with their original schema. The registry is an
//! append-only log of `(id, schema)` records.

use std::collections::HashMap;
use std::fs::OpenOptions;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut};
use railgun_types::encode::{crc32c, get_string, get_uvarint, put_bytes, put_uvarint};
use railgun_types::{FieldDef, FieldType, RailgunError, Result, Schema, SchemaId};

/// File name of the registry log inside a reservoir directory.
pub const REGISTRY_FILE: &str = "schemas.reg";

/// In-memory registry over an append-only on-disk log.
pub struct SchemaRegistry {
    path: PathBuf,
    schemas: HashMap<SchemaId, Schema>,
    current: Option<SchemaId>,
    next_id: u32,
}

fn encode_field_type(t: FieldType) -> u8 {
    match t {
        FieldType::Bool => 0,
        FieldType::Int => 1,
        FieldType::Float => 2,
        FieldType::Str => 3,
    }
}

fn decode_field_type(b: u8) -> Result<FieldType> {
    match b {
        0 => Ok(FieldType::Bool),
        1 => Ok(FieldType::Int),
        2 => Ok(FieldType::Float),
        3 => Ok(FieldType::Str),
        other => Err(RailgunError::Corruption(format!(
            "unknown field type {other}"
        ))),
    }
}

impl SchemaRegistry {
    /// Open (or create) the registry in `dir`, replaying its log.
    pub fn open(dir: &Path) -> Result<Self> {
        let path = dir.join(REGISTRY_FILE);
        let mut reg = SchemaRegistry {
            path,
            schemas: HashMap::new(),
            current: None,
            next_id: 0,
        };
        let mut raw = Vec::new();
        match std::fs::File::open(&reg.path) {
            Ok(mut f) => {
                f.read_to_end(&mut raw)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(reg),
            Err(e) => return Err(e.into()),
        }
        let mut cur = &raw[..];
        while cur.len() >= 8 {
            let len = u32::from_le_bytes(cur[0..4].try_into().expect("4b")) as usize;
            let crc = u32::from_le_bytes(cur[4..8].try_into().expect("4b"));
            if cur.len() < 8 + len {
                break; // torn tail
            }
            let payload = &cur[8..8 + len];
            if crc32c(payload) != crc {
                break;
            }
            let (id, schema) = Self::decode_record(payload)?;
            reg.next_id = reg.next_id.max(id.0 + 1);
            reg.schemas.insert(id, schema);
            reg.current = Some(id);
            cur = &cur[8 + len..];
        }
        Ok(reg)
    }

    fn decode_record(mut p: &[u8]) -> Result<(SchemaId, Schema)> {
        let id = SchemaId(get_uvarint(&mut p)? as u32);
        let n = get_uvarint(&mut p)? as usize;
        let mut fields = Vec::with_capacity(n);
        for _ in 0..n {
            let name = get_string(&mut p)?;
            if !p.has_remaining() {
                return Err(RailgunError::Corruption("registry record truncated".into()));
            }
            let ty = decode_field_type(p.get_u8())?;
            fields.push(FieldDef::new(name, ty));
        }
        Ok((id, Schema::new(fields)?))
    }

    /// Register a new schema version, making it current.
    ///
    /// If the schema is identical to the current one, the current id is
    /// returned without appending a record.
    pub fn register(&mut self, schema: Schema) -> Result<SchemaId> {
        if let Some(cur) = self.current {
            if self.schemas[&cur] == schema {
                return Ok(cur);
            }
        }
        let id = SchemaId(self.next_id);
        self.next_id += 1;
        let mut payload = Vec::new();
        put_uvarint(&mut payload, u64::from(id.0));
        put_uvarint(&mut payload, schema.fields().len() as u64);
        for f in schema.fields() {
            put_bytes(&mut payload, f.name.as_bytes());
            payload.put_u8(encode_field_type(f.ty));
        }
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.put_u32_le(payload.len() as u32);
        frame.put_u32_le(crc32c(&payload));
        frame.put_slice(&payload);
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        file.write_all(&frame)?;
        file.sync_data()?;
        self.schemas.insert(id, schema);
        self.current = Some(id);
        Ok(id)
    }

    /// Schema for a given id (old chunks look up their original version).
    pub fn get(&self, id: SchemaId) -> Option<&Schema> {
        self.schemas.get(&id)
    }

    /// The id new chunks should be written under.
    pub fn current(&self) -> Option<SchemaId> {
        self.current
    }

    /// Number of registered versions.
    pub fn len(&self) -> usize {
        self.schemas.len()
    }

    /// True iff no schema has been registered.
    pub fn is_empty(&self) -> bool {
        self.schemas.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("railgun-reg-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn schema_v1() -> Schema {
        Schema::from_pairs(&[("cardId", FieldType::Str), ("amount", FieldType::Float)]).unwrap()
    }

    fn schema_v2() -> Schema {
        Schema::from_pairs(&[
            ("cardId", FieldType::Str),
            ("amount", FieldType::Float),
            ("country", FieldType::Str),
        ])
        .unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let dir = fresh("basic");
        let mut reg = SchemaRegistry::open(&dir).unwrap();
        assert!(reg.is_empty());
        let id1 = reg.register(schema_v1()).unwrap();
        assert_eq!(reg.current(), Some(id1));
        assert_eq!(reg.get(id1), Some(&schema_v1()));
    }

    #[test]
    fn identical_schema_reuses_id() {
        let dir = fresh("dedup");
        let mut reg = SchemaRegistry::open(&dir).unwrap();
        let id1 = reg.register(schema_v1()).unwrap();
        let id2 = reg.register(schema_v1()).unwrap();
        assert_eq!(id1, id2);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn evolution_keeps_old_versions() {
        let dir = fresh("evolve");
        let mut reg = SchemaRegistry::open(&dir).unwrap();
        let id1 = reg.register(schema_v1()).unwrap();
        let id2 = reg.register(schema_v2()).unwrap();
        assert_ne!(id1, id2);
        assert_eq!(reg.current(), Some(id2));
        // Old chunks can still resolve their schema.
        assert_eq!(reg.get(id1), Some(&schema_v1()));
        assert_eq!(reg.get(id2), Some(&schema_v2()));
    }

    #[test]
    fn registry_survives_reopen() {
        let dir = fresh("reopen");
        let (id1, id2);
        {
            let mut reg = SchemaRegistry::open(&dir).unwrap();
            id1 = reg.register(schema_v1()).unwrap();
            id2 = reg.register(schema_v2()).unwrap();
        }
        let reg = SchemaRegistry::open(&dir).unwrap();
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.current(), Some(id2));
        assert_eq!(reg.get(id1), Some(&schema_v1()));
    }

    #[test]
    fn torn_tail_keeps_earlier_versions() {
        let dir = fresh("torn");
        {
            let mut reg = SchemaRegistry::open(&dir).unwrap();
            reg.register(schema_v1()).unwrap();
            reg.register(schema_v2()).unwrap();
        }
        let path = dir.join(REGISTRY_FILE);
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 3]).unwrap();
        let reg = SchemaRegistry::open(&dir).unwrap();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.get(SchemaId(0)), Some(&schema_v1()));
    }
}
