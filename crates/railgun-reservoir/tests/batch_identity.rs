//! Batched-ingest identity: `Reservoir::append_batch` must leave the
//! reservoir in *exactly* the state that appending the same events one at
//! a time would — same outcomes, same stats, and byte-identical segment
//! files on disk. This is the invariant the batched ingest path (PR 6)
//! is allowed to rely on when it amortizes locks and metadata refreshes.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use railgun_reservoir::{
    AppendOutcome, LatePolicy, Reservoir, ReservoirConfig,
};
use railgun_types::{Event, EventId, FieldType, Schema, Timestamp, Value};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!(
        "railgun-batchid-{}-{tag}-{n}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn schema() -> Schema {
    Schema::from_pairs(&[("cardId", FieldType::Str), ("amount", FieldType::Float)]).unwrap()
}

fn ev(id: u64, ts: i64) -> Event {
    Event::new(
        EventId(id),
        Timestamp::from_millis(ts),
        vec![Value::Str(format!("card-{}", id % 5)), Value::Float(id as f64)],
    )
}

/// Tiny chunks + tiny files so even short streams exercise chunk closes,
/// transition finalization and file rotation.
fn small_cfg(late_policy: LatePolicy) -> ReservoirConfig {
    ReservoirConfig {
        chunk_target_events: 8,
        chunk_target_bytes: 1 << 20,
        file_target_bytes: 1024,
        cache_capacity_chunks: 4,
        late_policy,
        ..ReservoirConfig::default()
    }
}

/// All segment/registry files under `dir` as (relative name, bytes),
/// sorted by name. Flushes are assumed done by the caller.
fn disk_state(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let entry = entry.unwrap();
        if entry.file_type().unwrap().is_file() {
            out.push((
                entry.file_name().to_string_lossy().into_owned(),
                std::fs::read(entry.path()).unwrap(),
            ));
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Build the event stream from proptest-drawn lateness/duplicate vectors:
/// mostly in-order with late arrivals, ties, and occasional duplicate ids.
fn stream(lateness: &[i64], dup_every: u64) -> Vec<Event> {
    lateness
        .iter()
        .enumerate()
        .map(|(i, late)| {
            let i = i as u64;
            // Re-send an earlier id now and then: dedup must behave
            // identically whether the duplicate lands in the same batch
            // as the original or a later one.
            let id = if dup_every > 0 && i.is_multiple_of(dup_every) && i > 0 { i / 2 } else { i };
            ev(id, i as i64 * 10 - late)
        })
        .collect()
}

/// Drive `batched` with `append_batch` over the given split sizes and
/// `sequential` one event at a time; assert identical outcomes, stats and
/// on-disk bytes.
fn assert_identical(events: Vec<Event>, splits: &[usize], late_policy: LatePolicy, tag: &str) {
    let dir_b = fresh(&format!("{tag}-batched"));
    let dir_s = fresh(&format!("{tag}-seq"));
    {
        let batched = Reservoir::open(&dir_b, schema(), small_cfg(late_policy)).unwrap();
        let sequential = Reservoir::open(&dir_s, schema(), small_cfg(late_policy)).unwrap();

        let mut batch_outcomes: Vec<AppendOutcome> = Vec::new();
        let mut rest = events.as_slice();
        let mut si = 0usize;
        while !rest.is_empty() {
            let take = splits[si % splits.len()].min(rest.len());
            si += 1;
            let (chunk, tail) = rest.split_at(take);
            rest = tail;
            batch_outcomes.extend(batched.append_batch(chunk.iter().cloned()).unwrap());
        }
        let seq_outcomes: Vec<AppendOutcome> = events
            .iter()
            .map(|e| sequential.append(e.clone()).unwrap())
            .collect();
        prop_assert_eq!(&batch_outcomes, &seq_outcomes);

        batched.flush_open_chunk().unwrap();
        batched.flush_io().unwrap();
        sequential.flush_open_chunk().unwrap();
        sequential.flush_io().unwrap();

        let sb = batched.stats();
        let ss = sequential.stats();
        prop_assert_eq!(sb.appended, ss.appended);
        prop_assert_eq!(sb.duplicates, ss.duplicates);
        prop_assert_eq!(sb.late_discarded, ss.late_discarded);
        prop_assert_eq!(sb.late_rewritten, ss.late_rewritten);
        prop_assert_eq!(sb.chunks_finalized, ss.chunks_finalized);
        prop_assert_eq!(sb.bytes_written, ss.bytes_written);

        let db = disk_state(&dir_b);
        let ds = disk_state(&dir_s);
        prop_assert_eq!(
            db.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>(),
            ds.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>()
        );
        for ((name, b), (_, s)) in db.iter().zip(ds.iter()) {
            prop_assert!(b == s, "segment file {name} differs between batched and sequential");
        }
    }
    std::fs::remove_dir_all(&dir_b).ok();
    std::fs::remove_dir_all(&dir_s).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random batch splits over a mostly-in-order stream with late
    /// arrivals, timestamp ties and duplicate ids must be byte-identical
    /// to one-at-a-time ingest, under both late policies.
    #[test]
    fn batched_equals_sequential_discard(
        lateness in proptest::collection::vec(0i64..40, 1..160),
        splits in proptest::collection::vec(1usize..9, 1..24),
        dup_every in 0u64..7,
    ) {
        assert_identical(stream(&lateness, dup_every), &splits, LatePolicy::Discard, "d");
    }

    #[test]
    fn batched_equals_sequential_rewrite(
        lateness in proptest::collection::vec(0i64..40, 1..160),
        splits in proptest::collection::vec(1usize..9, 1..24),
        dup_every in 0u64..7,
    ) {
        assert_identical(stream(&lateness, dup_every), &splits, LatePolicy::Rewrite, "r");
    }
}

#[test]
fn empty_batch_is_a_no_op() {
    let dir = fresh("empty");
    let res = Reservoir::open(&dir, schema(), small_cfg(LatePolicy::Discard)).unwrap();
    let before = res.stats();
    let outcomes = res.append_batch(std::iter::empty()).unwrap();
    assert!(outcomes.is_empty());
    assert_eq!(res.stats(), before);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_of_one_equals_append() {
    // Identity for the degenerate batch, including forcing chunk closes.
    let events: Vec<Event> = (0..40).map(|i| ev(i, i as i64 * 10)).collect();
    assert_identical(events, &[1], LatePolicy::Discard, "one");
}

#[test]
fn whole_stream_in_one_batch_equals_append() {
    let events: Vec<Event> = (0..60)
        .map(|i| ev(i, i as i64 * 10 - (i as i64 % 3) * 15))
        .collect();
    assert_identical(events, &[usize::MAX], LatePolicy::Rewrite, "whole");
}
