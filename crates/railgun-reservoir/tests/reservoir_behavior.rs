//! Behavioural tests for the event reservoir: chunk lifecycle, cursors,
//! out-of-order handling, dedup, recovery, truncation, and the memory-
//! independence property behind the paper's Figure 9(a).

use std::path::PathBuf;

use railgun_reservoir::{
    AppendOutcome, Codec, LatePolicy, Reservoir, ReservoirConfig,
};
use railgun_types::{Event, EventId, FieldType, Schema, TimeDelta, Timestamp, Value};

fn fresh(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("railgun-resv-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn schema() -> Schema {
    Schema::from_pairs(&[("cardId", FieldType::Str), ("amount", FieldType::Float)]).unwrap()
}

fn ev(id: u64, ts: i64) -> Event {
    Event::new(
        EventId(id),
        Timestamp::from_millis(ts),
        vec![Value::Str(format!("card-{}", id % 5)), Value::Float(id as f64)],
    )
}

fn small_cfg() -> ReservoirConfig {
    ReservoirConfig {
        chunk_target_events: 8,
        chunk_target_bytes: 1 << 20,
        file_target_bytes: 1024,
        cache_capacity_chunks: 4,
        ..ReservoirConfig::default()
    }
}

#[test]
fn append_and_iterate_in_order() {
    let dir = fresh("order");
    let res = Reservoir::open(&dir, schema(), small_cfg()).unwrap();
    for i in 0..100 {
        assert_eq!(res.append(ev(i, i as i64 * 10)).unwrap(), AppendOutcome::Appended);
    }
    let cursor = res.cursor_at_start();
    let all = cursor.advance_upto(Timestamp::from_millis(10_000));
    assert_eq!(all.len(), 100);
    for (i, e) in all.iter().enumerate() {
        assert_eq!(e.id, EventId(i as u64));
    }
}

#[test]
fn cursor_bound_is_exclusive_and_monotonic() {
    let dir = fresh("bounds");
    let res = Reservoir::open(&dir, schema(), small_cfg()).unwrap();
    for i in 0..10 {
        res.append(ev(i, i as i64 * 100)).unwrap();
    }
    let c = res.cursor_at_start();
    // ts < 300: events at 0, 100, 200.
    assert_eq!(c.advance_upto(Timestamp::from_millis(300)).len(), 3);
    // Exclusive bound: event at exactly 300 not yielded yet.
    assert_eq!(c.advance_upto(Timestamp::from_millis(301)).len(), 1);
    // Re-advancing with a smaller bound yields nothing.
    assert!(c.advance_upto(Timestamp::from_millis(100)).is_empty());
    // Remaining events come once.
    assert_eq!(c.advance_upto(Timestamp::MAX).len(), 6);
    assert!(c.advance_upto(Timestamp::MAX).is_empty());
}

#[test]
fn interleaved_appends_and_advances() {
    let dir = fresh("interleave");
    let res = Reservoir::open(&dir, schema(), small_cfg()).unwrap();
    let c = res.cursor_at_start();
    let mut yielded = 0;
    for i in 0..200 {
        res.append(ev(i, i as i64)).unwrap();
        // Tail trails 50ms behind.
        yielded += c.advance_upto(Timestamp::from_millis(i as i64 - 50)).len();
    }
    yielded += c.advance_upto(Timestamp::MAX).len();
    assert_eq!(yielded, 200, "every event must be yielded exactly once");
}

#[test]
fn duplicate_ids_are_rejected_while_in_memory() {
    let dir = fresh("dedup");
    let res = Reservoir::open(&dir, schema(), small_cfg()).unwrap();
    assert_eq!(res.append(ev(7, 100)).unwrap(), AppendOutcome::Appended);
    assert_eq!(res.append(ev(7, 120)).unwrap(), AppendOutcome::Duplicate);
    let s = res.stats();
    assert_eq!(s.appended, 1);
    assert_eq!(s.duplicates, 1);
}

#[test]
fn late_events_discarded_by_default() {
    let dir = fresh("late-discard");
    let cfg = small_cfg(); // 8 events per chunk, hold = 0
    let res = Reservoir::open(&dir, schema(), cfg).unwrap();
    // Fill two chunks; frontier advances to ts of the last finalized chunk.
    for i in 0..16 {
        res.append(ev(i, 1000 + i as i64)).unwrap();
    }
    // An event far in the past is late.
    let out = res.append(ev(100, 500)).unwrap();
    assert_eq!(out, AppendOutcome::LateDiscarded);
    assert_eq!(res.stats().late_discarded, 1);
}

#[test]
fn late_events_rewritten_when_configured() {
    let dir = fresh("late-rewrite");
    let cfg = ReservoirConfig {
        late_policy: LatePolicy::Rewrite,
        ..small_cfg()
    };
    let res = Reservoir::open(&dir, schema(), cfg).unwrap();
    for i in 0..16 {
        res.append(ev(i, 1000 + i as i64)).unwrap();
    }
    match res.append(ev(100, 500)).unwrap() {
        AppendOutcome::LateRewritten(ts) => assert!(ts >= Timestamp::from_millis(1000)),
        other => panic!("expected rewrite, got {other:?}"),
    }
    // The rewritten event is stored and iterable.
    let c = res.cursor_at_start();
    assert_eq!(c.advance_upto(Timestamp::MAX).len(), 17);
}

#[test]
fn transition_hold_accepts_late_events() {
    let dir = fresh("transition");
    let cfg = ReservoirConfig {
        transition_hold: TimeDelta::from_millis(1000),
        ..small_cfg()
    };
    let res = Reservoir::open(&dir, schema(), cfg).unwrap();
    // Chunk 0: ts 0..7, closes at 8 events but stays in transition.
    for i in 0..12 {
        res.append(ev(i, i as i64)).unwrap();
    }
    // ts=3.5 is inside chunk 0's range; the hold keeps it open for late.
    assert_eq!(res.append(ev(50, 3)).unwrap(), AppendOutcome::Appended);
    // Advancing far enough finalizes chunk 0 (watermark passes).
    for i in 100..110 {
        res.append(ev(i, 2000 + i as i64)).unwrap();
    }
    // Now ts=3 is behind the finalized frontier => late.
    assert_eq!(res.append(ev(200, 3)).unwrap(), AppendOutcome::LateDiscarded);
    // All stored events come out in timestamp order.
    let c = res.cursor_at_start();
    let all = c.advance_upto(Timestamp::MAX);
    assert_eq!(all.len(), 23);
    for w in all.windows(2) {
        assert!(w[0].ts <= w[1].ts, "cursor must yield in ts order");
    }
}

#[test]
fn late_event_behind_cursor_bound_is_never_yielded() {
    let dir = fresh("late-cursor");
    let cfg = ReservoirConfig {
        transition_hold: TimeDelta::from_millis(10_000),
        ..small_cfg()
    };
    let res = Reservoir::open(&dir, schema(), cfg).unwrap();
    for i in 0..10 {
        res.append(ev(i, i as i64 * 100)).unwrap();
    }
    let c = res.cursor_at_start();
    let first = c.advance_upto(Timestamp::from_millis(450)); // events 0..=4
    assert_eq!(first.len(), 5);
    // Late event at ts=200, behind the cursor's bound of 450.
    assert_eq!(res.append(ev(99, 200)).unwrap(), AppendOutcome::Appended);
    let rest = c.advance_upto(Timestamp::MAX);
    // The late event is skipped by this cursor (its bound passed it), so we
    // see exactly the 5 remaining on-time events.
    assert_eq!(rest.len(), 5);
    assert!(rest.iter().all(|e| e.id != EventId(99)));
    // A fresh cursor does see it.
    let c2 = res.cursor_at_start();
    assert_eq!(c2.advance_upto(Timestamp::MAX).len(), 11);
}

#[test]
fn late_event_ahead_of_cursor_bound_is_yielded() {
    let dir = fresh("late-ahead");
    let cfg = ReservoirConfig {
        transition_hold: TimeDelta::from_millis(10_000),
        ..small_cfg()
    };
    let res = Reservoir::open(&dir, schema(), cfg).unwrap();
    for i in 0..10 {
        res.append(ev(i, i as i64 * 100)).unwrap();
    }
    let c = res.cursor_at_start();
    assert_eq!(c.advance_upto(Timestamp::from_millis(450)).len(), 5);
    // Late event at ts=600: ahead of the bound, must be yielded in order.
    res.append(ev(99, 600)).unwrap();
    let rest = c.advance_upto(Timestamp::MAX);
    assert_eq!(rest.len(), 6);
    let pos = rest.iter().position(|e| e.id == EventId(99)).unwrap();
    assert_eq!(rest[pos].ts, Timestamp::from_millis(600));
    for w in rest.windows(2) {
        assert!(w[0].ts <= w[1].ts);
    }
}

#[test]
fn recovery_after_restart_preserves_durable_chunks() {
    let dir = fresh("recover");
    {
        let res = Reservoir::open(&dir, schema(), small_cfg()).unwrap();
        for i in 0..50 {
            res.append(ev(i, i as i64 * 10)).unwrap();
        }
        res.flush_open_chunk().unwrap();
        res.flush_io().unwrap();
    }
    let res = Reservoir::open(&dir, schema(), small_cfg()).unwrap();
    let c = res.cursor_at_start();
    let all = c.advance_upto(Timestamp::MAX);
    assert_eq!(all.len(), 50);
    // Appends continue after the recovered frontier.
    assert_eq!(res.append(ev(50, 1000)).unwrap(), AppendOutcome::Appended);
    // Events behind the recovered frontier are late.
    assert_eq!(res.append(ev(51, 5)).unwrap(), AppendOutcome::LateDiscarded);
}

#[test]
fn recovery_without_flush_loses_only_open_chunk() {
    let dir = fresh("recover-partial");
    {
        let res = Reservoir::open(&dir, schema(), small_cfg()).unwrap();
        // 20 events = 2 full chunks (16) + 4 in the open chunk.
        for i in 0..20 {
            res.append(ev(i, i as i64 * 10)).unwrap();
        }
        res.flush_io().unwrap();
        // Dropped without flushing the open chunk — simulates a crash; the
        // open-chunk events are recovered from the messaging layer instead.
    }
    let res = Reservoir::open(&dir, schema(), small_cfg()).unwrap();
    let c = res.cursor_at_start();
    assert_eq!(c.advance_upto(Timestamp::MAX).len(), 16);
}

#[test]
fn checkpoint_restores_elsewhere() {
    let dir = fresh("ckpt-src");
    let target = fresh("ckpt-dst");
    let res = Reservoir::open(&dir, schema(), small_cfg()).unwrap();
    for i in 0..40 {
        res.append(ev(i, i as i64 * 10)).unwrap();
    }
    res.flush_open_chunk().unwrap();
    res.checkpoint(&target).unwrap();
    // Keep writing to the source; the checkpoint must not change.
    for i in 40..80 {
        res.append(ev(i, i as i64 * 10)).unwrap();
    }
    let restored = Reservoir::open(&target, schema(), small_cfg()).unwrap();
    let c = restored.cursor_at_start();
    assert_eq!(c.advance_upto(Timestamp::MAX).len(), 40);
}

#[test]
fn truncation_drops_expired_chunks_and_files() {
    let dir = fresh("truncate");
    let res = Reservoir::open(&dir, schema(), small_cfg()).unwrap();
    for i in 0..100 {
        res.append(ev(i, i as i64 * 10)).unwrap();
    }
    res.flush_io().unwrap();
    let before = res.stats();
    assert!(before.durable_chunks > 5);
    let dropped = res.truncate_before(Timestamp::from_millis(500)).unwrap();
    assert!(dropped > 0, "expected chunks below ts=500 to drop");
    let after = res.stats();
    assert!(after.durable_chunks < before.durable_chunks);
    // Events from ts>=500 still readable.
    let c = res.cursor_at(Timestamp::from_millis(500));
    let rest = c.advance_upto(Timestamp::MAX);
    assert!(rest.iter().all(|e| e.ts >= Timestamp::from_millis(500)));
}

#[test]
fn truncation_respects_cursors() {
    let dir = fresh("truncate-cursor");
    let res = Reservoir::open(&dir, schema(), small_cfg()).unwrap();
    for i in 0..100 {
        res.append(ev(i, i as i64 * 10)).unwrap();
    }
    res.flush_io().unwrap();
    let c = res.cursor_at_start(); // parked at chunk 0
    let dropped = res.truncate_before(Timestamp::from_millis(990)).unwrap();
    assert_eq!(dropped, 0, "cursor at start must block truncation");
    // After the cursor advances, truncation can proceed.
    c.advance_upto(Timestamp::from_millis(500));
    let dropped = res.truncate_before(Timestamp::from_millis(400)).unwrap();
    assert!(dropped > 0);
}

#[test]
fn memory_is_independent_of_history_size() {
    // The §5.2 claim: reservoir memory is bounded by the cache, not by the
    // number of stored events.
    let dir = fresh("memory");
    let cfg = ReservoirConfig {
        chunk_target_events: 64,
        cache_capacity_chunks: 4,
        file_target_bytes: 1 << 20,
        ..ReservoirConfig::default()
    };
    let res = Reservoir::open(&dir, schema(), cfg).unwrap();
    let mut peak_mem = 0usize;
    for i in 0..20_000u64 {
        res.append(ev(i, i as i64)).unwrap();
        if i % 1000 == 0 {
            // A real stream arrives at wire pace, giving the I/O thread its
            // time budget; an unpaced loop would only measure queue backlog.
            res.flush_io().unwrap();
            peak_mem = peak_mem.max(res.stats().events_in_memory);
        }
    }
    let s = res.stats();
    assert!(s.appended == 20_000);
    // Bounded by: 4 cached chunks + open chunk + chunks pinned while the
    // async I/O thread drains its queue. The point is the bound does not
    // scale with the 20k-event history.
    assert!(
        peak_mem <= 64 * 24,
        "events in memory ({peak_mem}) must stay bounded by the cache"
    );
    // Steady state after the write queue drains: cache + open chunk only.
    res.flush_io().unwrap();
    let settled = res.stats().events_in_memory;
    assert!(
        settled <= 64 * 6,
        "settled events in memory ({settled}) must be cache-bounded"
    );
    assert!(s.durable_chunks > 250);
}

#[test]
fn cache_miss_and_prefetch_statistics() {
    let dir = fresh("prefetch");
    let cfg = ReservoirConfig {
        chunk_target_events: 16,
        cache_capacity_chunks: 3,
        prefetch: true,
        ..ReservoirConfig::default()
    };
    let res = Reservoir::open(&dir, schema(), cfg).unwrap();
    for i in 0..320 {
        res.append(ev(i, i as i64)).unwrap();
    }
    res.flush_io().unwrap();
    // A cursor walking 20 chunks in steady-state pace (4 events per step,
    // so the just-in-time read-ahead is issued an advance before the
    // crossing): after each step's barrier the next chunk is resident and
    // only the very first access misses.
    let c = res.cursor_at_start();
    for step in 1..=80 {
        c.advance_upto(Timestamp::from_millis(step * 4));
        res.flush_io().unwrap(); // let queued prefetches land
    }
    let s = res.stats();
    assert!(s.cache.prefetch_inserts > 0, "prefetch should trigger: {s:?}");
    assert!(
        s.cache.misses <= 3,
        "with read-ahead nearly every transition hits: {s:?}"
    );
    // Without prefetch, every cold chunk is a miss.
    drop(c);
    drop(res);
    let dir2 = fresh("noprefetch");
    let cfg2 = ReservoirConfig {
        chunk_target_events: 16,
        cache_capacity_chunks: 3,
        prefetch: false,
        ..ReservoirConfig::default()
    };
    let res2 = Reservoir::open(&dir2, schema(), cfg2).unwrap();
    for i in 0..320 {
        res2.append(ev(i, i as i64)).unwrap();
    }
    res2.flush_io().unwrap();
    let c2 = res2.cursor_at_start();
    for step in 1..=80 {
        c2.advance_upto(Timestamp::from_millis(step * 4));
        res2.flush_io().unwrap();
    }
    let s2 = res2.stats();
    assert!(
        s2.cache.misses > s.cache.misses,
        "disabling prefetch must increase misses ({} vs {})",
        s2.cache.misses,
        s.cache.misses
    );
}

#[test]
fn many_cursors_share_the_store() {
    let dir = fresh("multi-cursor");
    let res = Reservoir::open(&dir, schema(), small_cfg()).unwrap();
    for i in 0..80 {
        res.append(ev(i, i as i64 * 10)).unwrap();
    }
    let cursors: Vec<_> = (0..10)
        .map(|k| res.cursor_at(Timestamp::from_millis(k as i64 * 50)))
        .collect();
    assert_eq!(res.stats().cursors, 10);
    for (k, c) in cursors.iter().enumerate() {
        let events = c.advance_upto(Timestamp::MAX);
        let expected = 80 - (k * 5);
        assert_eq!(events.len(), expected, "cursor {k}");
    }
    drop(cursors);
    assert_eq!(res.stats().cursors, 0);
}

#[test]
fn schema_evolution_old_chunks_still_readable() {
    let dir = fresh("evolve");
    let res = Reservoir::open(&dir, schema(), small_cfg()).unwrap();
    for i in 0..16 {
        res.append(ev(i, i as i64)).unwrap();
    }
    let v2 = Schema::from_pairs(&[
        ("cardId", FieldType::Str),
        ("amount", FieldType::Float),
        ("country", FieldType::Str),
    ])
    .unwrap();
    let id2 = res.evolve_schema(v2).unwrap();
    assert_eq!(res.current_schema(), id2);
    // New events under the new schema.
    for i in 16..32 {
        res.append(Event::new(
            EventId(i),
            Timestamp::from_millis(i as i64),
            vec![
                Value::Str("c".into()),
                Value::Float(1.0),
                Value::Str("PT".into()),
            ],
        ))
        .unwrap();
    }
    res.flush_open_chunk().unwrap();
    res.flush_io().unwrap();
    drop(res);
    // Reopen; both generations decode.
    let res = Reservoir::open(&dir, schema(), small_cfg()).unwrap();
    let c = res.cursor_at_start();
    let all = c.advance_upto(Timestamp::MAX);
    assert_eq!(all.len(), 32);
    assert_eq!(all[0].values().len(), 2);
    assert_eq!(all[31].values().len(), 3);
}

#[test]
fn codec_none_roundtrips_too() {
    let dir = fresh("codec-none");
    let cfg = ReservoirConfig {
        codec: Codec::None,
        ..small_cfg()
    };
    let res = Reservoir::open(&dir, schema(), cfg).unwrap();
    for i in 0..40 {
        res.append(ev(i, i as i64)).unwrap();
    }
    res.flush_open_chunk().unwrap();
    res.flush_io().unwrap();
    let c = res.cursor_at_start();
    assert_eq!(c.advance_upto(Timestamp::MAX).len(), 40);
}

#[test]
fn peek_ts_reports_next_event() {
    let dir = fresh("peek");
    let res = Reservoir::open(&dir, schema(), small_cfg()).unwrap();
    let c = res.cursor_at_start();
    assert_eq!(c.peek_ts(), None);
    res.append(ev(0, 100)).unwrap();
    res.append(ev(1, 200)).unwrap();
    assert_eq!(c.peek_ts(), Some(Timestamp::from_millis(100)));
    c.advance_upto(Timestamp::from_millis(150));
    assert_eq!(c.peek_ts(), Some(Timestamp::from_millis(200)));
}

/// Tentpole regression (PR 2): a cold cursor catching up on durable chunks
/// must not serialize against `append`. One thread ingests while another
/// drains everything from disk through a tiny cache; both must make
/// progress, every event must be yielded exactly once, in timestamp order,
/// and always below the bound the drainer asked for.
#[test]
fn concurrent_append_and_cold_drain() {
    let dir = fresh("concurrent-cold");
    let cfg = ReservoirConfig {
        chunk_target_events: 32,
        chunk_target_bytes: 1 << 20,
        file_target_bytes: 16 << 10,
        cache_capacity_chunks: 2,
        prefetch: false, // every chunk transition is a real disk load
        ..ReservoirConfig::default()
    };
    const OLD: u64 = 8_000;
    const NEW: u64 = 8_000;
    {
        let res = Reservoir::open(&dir, schema(), cfg.clone()).unwrap();
        for i in 0..OLD {
            res.append(ev(i, i as i64)).unwrap();
        }
        res.flush_open_chunk().unwrap();
        res.flush_io().unwrap();
    }
    // Reopen: cache is cold, all OLD chunks are durable on disk.
    let res = Reservoir::open(&dir, schema(), cfg).unwrap();
    let drained = std::thread::scope(|s| {
        let res_ref = &res;
        let appender = s.spawn(move || {
            for i in 0..NEW {
                let id = OLD + i;
                assert_eq!(
                    res_ref.append(ev(id, id as i64)).unwrap(),
                    AppendOutcome::Appended
                );
            }
        });
        // Drain the durable backlog concurrently with the appends. The
        // bound is capped at the backlog frontier: a cursor bound is a
        // watermark, and an event inserted *below* a live cursor's bound
        // is late by definition and deliberately skipped (the engine's
        // window cursors rely on that). Racing the bound past the
        // appender's frontier would exercise that skip semantics instead
        // of the cold-drain path this test pins down.
        let cursor = res.cursor_at_start();
        let mut drained: Vec<Event> = Vec::new();
        let mut bound = 0i64;
        let mut empty_batches = 0u32;
        while (drained.len() as u64) < OLD {
            bound = (bound + 256).min(OLD as i64);
            let batch = cursor.advance_upto(Timestamp::from_millis(bound));
            assert!(
                batch.iter().all(|e| e.ts < Timestamp::from_millis(bound)),
                "yielded event at/above the requested bound"
            );
            if batch.is_empty() {
                empty_batches += 1;
            } else {
                empty_batches = 0;
            }
            drained.extend(batch);
            assert!(
                empty_batches < 100_000,
                "drainer starved: only {} of {OLD} durable events surfaced",
                drained.len()
            );
        }
        appender.join().unwrap();
        // Appender done: one final advance must surface everything else.
        drained.extend(cursor.advance_upto(Timestamp::MAX));
        drained
    });
    assert_eq!(drained.len() as u64, OLD + NEW, "every event yielded exactly once");
    assert!(
        drained.windows(2).all(|w| w[0].ts <= w[1].ts),
        "drain must stay in timestamp order"
    );
    let mut ids: Vec<u64> = drained.iter().map(|e| e.id.0).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len() as u64, OLD + NEW, "no duplicates, no losses");
}
