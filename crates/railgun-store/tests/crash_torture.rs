//! The crash-torture sweep: crash the store at every registered crash
//! point during a mixed workload, recover from the frozen image, and
//! assert no acknowledged write is lost, integrity holds, and every
//! acknowledged checkpoint restores exactly (see `railgun_store::torture`
//! for the full contract).
//!
//! Run in release mode in CI — the sweep is ~40 full workload runs.

use railgun_store::{crash_points, torture};

const OPS: usize = 400;
const SEED: u64 = 0xC0FFEE;
const HITS_PER_POINT: u64 = 3;

#[test]
fn sweep_every_registered_crash_point() {
    let root = std::env::temp_dir().join(format!("railgun-torture-{}", std::process::id()));
    let report = torture::sweep(&root, OPS, SEED, HITS_PER_POINT).expect("crash-torture sweep");
    // Every registered point was swept (sweep() itself fails on a hole),
    // with at least first + last occurrence armed per point.
    assert!(report.profile.len() >= crash_points::ALL.len());
    let mut swept: Vec<&str> = report.results.iter().map(|r| r.plan.point).collect();
    swept.dedup();
    for point in crash_points::ALL {
        assert!(
            swept.contains(point),
            "crash point {point} missing from sweep results"
        );
    }
    assert!(
        report.results.iter().all(|r| r.tripped),
        "every armed plan must actually fire"
    );
    // The workload is long enough that some crashes land mid-flush /
    // mid-compaction: the sweep must exercise the repair paths, not just
    // clean reopens.
    assert!(
        report
            .results
            .iter()
            .any(|r| r.recovery.orphaned_sstables_quarantined > 0),
        "no sweep run exercised orphan quarantine"
    );
    assert!(
        report
            .results
            .iter()
            .any(|r| r.recovery.wal_truncated_bytes > 0),
        "no sweep run exercised torn-tail truncation"
    );
    assert!(
        report.results.iter().any(|r| r.recovery.stale_tmp_removed > 0),
        "no sweep run exercised stale-tmp removal"
    );
}

/// Same seed, same workload, same plan ⇒ identical crash image and
/// identical recovery outcome — the property that makes sweep failures
/// reproducible in isolation.
#[test]
fn sweep_is_deterministic() {
    let run = |tag: &str| {
        let root =
            std::env::temp_dir().join(format!("railgun-torture-det-{tag}-{}", std::process::id()));
        let report = torture::sweep(&root, 150, 7, 1).expect("sweep");
        report
            .results
            .iter()
            .map(|r| (r.plan, r.acked_ops, r.recovery.clone()))
            .collect::<Vec<_>>()
    };
    assert_eq!(run("a"), run("b"));
}
