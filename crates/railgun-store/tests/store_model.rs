//! Model-based schedule test for the store's capacity layer.
//!
//! Random put/delete/flush/compact/expire-horizon schedules run against
//! both the real [`Db`] (with a watermark [`CompactionFilter`] on the
//! default CF) and a two-level in-memory model: a `mem` map (the
//! memtable) and a `disk` map (the merged view of all SSTables). `Flush`
//! folds `mem` into `disk`; `Compact` drops tombstones and applies the
//! filter to `disk` — exactly what a full-CF compaction does, since the
//! newest-wins merge of every SSTable *is* the `disk` map.
//!
//! After every operation the store must read back **exactly** the model
//! (both are deterministic, so no value-or-absent slack is needed):
//! compaction reclaims precisely the expired keys and never touches a
//! live one. A final crash-reopen (drop without flush, WAL replay) must
//! land on the same state.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use railgun_store::{CfOptions, CompactionFilter, Db, DbOptions, FilterDecision};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

const KEYS: u64 = 48;

fn key_bytes(k: u64) -> Vec<u8> {
    format!("k{k:03}").into_bytes()
}

fn value_bytes(k: u64, stamp: u64) -> Vec<u8> {
    format!("{stamp:08}:payload-{k:03}").into_bytes()
}

/// Keys in this class are subject to watermark expiry.
fn expirable(k: u64) -> bool {
    k % 4 == 1
}

fn parse_key(key: &[u8]) -> Option<u64> {
    std::str::from_utf8(key.strip_prefix(b"k")?).ok()?.parse().ok()
}

fn parse_stamp(value: &[u8]) -> Option<u64> {
    std::str::from_utf8(value.get(..8)?).ok()?.parse().ok()
}

#[derive(Debug)]
struct StampFilter {
    horizon: Arc<AtomicU64>,
}

impl CompactionFilter for StampFilter {
    fn name(&self) -> &str {
        "model-stamp"
    }
    fn filter(&self, key: &[u8], value: &[u8]) -> FilterDecision {
        match (parse_key(key), parse_stamp(value)) {
            (Some(k), Some(s)) if expirable(k) && s < self.horizon.load(Ordering::Relaxed) => {
                FilterDecision::Discard
            }
            _ => FilterDecision::Keep,
        }
    }
}

fn store_opts(horizon: &Arc<AtomicU64>) -> DbOptions {
    DbOptions {
        // Budgets high enough that flush/compact happen only when the
        // schedule says so — the model mirrors explicit maintenance.
        memtable_budget_bytes: 1 << 30,
        compaction_trigger: usize::MAX,
        cf_options: vec![(
            "default".to_owned(),
            CfOptions {
                memtable_budget_bytes: 1 << 30,
                compaction_trigger: usize::MAX,
                ..CfOptions::default()
            }
            .with_filter(Arc::new(StampFilter {
                horizon: Arc::clone(horizon),
            })),
        )],
        ..DbOptions::default()
    }
}

/// Two-level model: `None` entries are tombstones.
#[derive(Default)]
struct Model {
    mem: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    disk: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    horizon: u64,
}

impl Model {
    fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.mem
            .get(key)
            .or_else(|| self.disk.get(key))
            .and_then(|e| e.as_deref())
    }

    fn live(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut merged = self.disk.clone();
        merged.extend(self.mem.clone());
        merged
            .into_iter()
            .filter_map(|(k, e)| e.map(|v| (k, v)))
            .collect()
    }

    fn flush(&mut self) {
        let mem = std::mem::take(&mut self.mem);
        self.disk.extend(mem);
    }

    fn compact(&mut self) {
        let horizon = self.horizon;
        self.disk.retain(|k, e| match e.as_deref() {
            None => false, // tombstones drop at full compaction
            Some(v) => !(parse_key(k).is_some_and(expirable)
                && parse_stamp(v).is_some_and(|s| s < horizon)),
        });
    }
}

fn check_equiv(db: &Db, model: &Model, ctx: &str) {
    for k in 0..KEYS {
        let key = key_bytes(k);
        let got = db.get(Db::DEFAULT_CF, &key).unwrap();
        let want = model.get(&key);
        assert_eq!(
            got.as_deref(),
            want,
            "{ctx}: key {k} diverged from model (expirable={})",
            expirable(k)
        );
    }
    let scanned = db.scan(Db::DEFAULT_CF, b"", None).unwrap();
    assert_eq!(scanned, model.live(), "{ctx}: full scan diverged from model");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any schedule of puts/deletes/flushes/filtered compactions/horizon
    /// advances leaves store and model identical — reads after
    /// compaction equal the model with the filter applied, and no live
    /// key is ever dropped.
    #[test]
    fn random_schedules_match_model(
        schedule in proptest::collection::vec((0u32..100, 0u64..KEYS, 0u64..30), 1..120),
    ) {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("railgun-store-model-{}-{n}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();

        let horizon = Arc::new(AtomicU64::new(0));
        let db = Db::open(&dir, store_opts(&horizon)).unwrap();
        let mut model = Model::default();
        let mut stamp = 0u64;

        for (i, (sel, k, lag)) in schedule.iter().enumerate() {
            match sel {
                0..=54 => {
                    stamp += 1;
                    let v = value_bytes(*k, stamp);
                    db.put(Db::DEFAULT_CF, &key_bytes(*k), &v).unwrap();
                    model.mem.insert(key_bytes(*k), Some(v));
                }
                55..=74 => {
                    db.delete(Db::DEFAULT_CF, &key_bytes(*k)).unwrap();
                    model.mem.insert(key_bytes(*k), None);
                }
                75..=84 => {
                    db.flush().unwrap();
                    model.flush();
                }
                85..=92 => {
                    db.compact_cf(Db::DEFAULT_CF).unwrap();
                    model.compact();
                }
                _ => {
                    let h = stamp.saturating_sub(*lag);
                    // Watermarks only advance — the monotonicity half of
                    // the filter contract.
                    horizon.fetch_max(h, Ordering::Relaxed);
                    model.horizon = model.horizon.max(h);
                }
            }
            check_equiv(&db, &model, &format!("after op {i}"));
        }

        let dropped = db.stats().filter_dropped;
        // Crash-reopen without a flush: WAL replay rebuilds the
        // memtable, the SSTables carry the compacted state.
        drop(db);
        let horizon2 = Arc::new(AtomicU64::new(model.horizon));
        let db = Db::open(&dir, store_opts(&horizon2)).unwrap();
        check_equiv(&db, &model, "after crash-reopen");
        prop_assert_eq!(db.stats().filter_dropped, 0, "reopen must not re-count drops");
        // Reclaim on the reopened image: flush + compact drops exactly
        // the expired keys, keeps every live one.
        db.flush().unwrap();
        db.compact_cf(Db::DEFAULT_CF).unwrap();
        model.flush();
        model.compact();
        check_equiv(&db, &model, "after post-reopen reclaim");
        let _ = dropped;

        drop(db);
        std::fs::remove_dir_all(&dir).ok();
    }
}
