//! WAL recovery properties under arbitrary damage.
//!
//! The WAL's crash contract: replay of a damaged log returns exactly a
//! *prefix* of the acknowledged records — never a corrupt record, never a
//! panic — and under `TolerateTornTail`, reopening repairs the file so
//! subsequent appends stay reachable. These properties must hold for
//! *any* truncation point (a crash can cut the file anywhere) and any
//! single-bit flip (a disk can corrupt anything). CRC framing is what
//! makes this true; these tests are what keep it true.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use railgun_store::wal::{Wal, WalRecord, WalRecoveryMode};
use railgun_store::RealFs;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_wal(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("railgun-walprop-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    let p = d.join(format!("{tag}-{n}.wal"));
    std::fs::remove_file(&p).ok();
    p
}

/// Deterministically build `n` acked records and return them plus the
/// on-disk bytes of the clean log.
fn write_log(path: &std::path::Path, n: usize, key_len: usize, val_len: usize) -> Vec<WalRecord> {
    let (mut wal, _) =
        Wal::open(RealFs::shared(), path, false, WalRecoveryMode::default()).unwrap();
    let mut recs = Vec::with_capacity(n);
    for i in 0..n {
        let rec = if i % 3 == 2 {
            WalRecord::Delete {
                cf: (i % 4) as u32,
                key: vec![i as u8; 1 + (i % key_len.max(1))],
            }
        } else {
            WalRecord::Put {
                cf: (i % 4) as u32,
                key: vec![i as u8; 1 + (i % key_len.max(1))],
                value: vec![(i * 7) as u8; i % (val_len + 1)],
            }
        };
        wal.append(&rec).unwrap();
        recs.push(rec);
    }
    wal.sync().unwrap();
    recs
}

/// The longest prefix of `acked` that `damaged` can legally replay to.
/// Replay must return *some* prefix — returning records beyond the first
/// damaged frame, reordering, or inventing records are all bugs.
fn assert_is_prefix(replayed: &[WalRecord], acked: &[WalRecord]) {
    assert!(replayed.len() <= acked.len(), "replay invented records");
    assert_eq!(
        replayed,
        &acked[..replayed.len()],
        "replay is not a prefix of the acknowledged sequence"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncate the log at any byte boundary: replay returns exactly the
    /// records whose frames fully survive, and reopening repairs the
    /// file so a post-reopen append is reachable.
    #[test]
    fn truncation_yields_exact_acked_prefix(
        n in 1usize..40,
        key_len in 1usize..24,
        val_len in 0usize..64,
        cut_frac in 0u32..=1000,
    ) {
        let path = fresh_wal("trunc");
        let acked = write_log(&path, n, key_len, val_len);
        let raw = std::fs::read(&path).unwrap();
        let cut = (raw.len() as u64 * u64::from(cut_frac) / 1000) as usize;
        std::fs::write(&path, &raw[..cut]).unwrap();

        let replayed = Wal::replay(&path).unwrap();
        assert_is_prefix(&replayed, &acked);
        // Cutting `k` whole frames off the tail must lose exactly those.
        let lost_bytes = raw.len() - cut;
        if lost_bytes == 0 {
            prop_assert_eq!(replayed.len(), acked.len());
        }

        // Reopen repairs: the torn tail is cut, and a new append lands
        // directly after the valid prefix.
        let (mut wal, rec) =
            Wal::open(RealFs::shared(), &path, false, WalRecoveryMode::default()).unwrap();
        prop_assert_eq!(rec.records.len(), replayed.len());
        let extra = WalRecord::Put { cf: 9, key: b"post".to_vec(), value: b"tear".to_vec() };
        wal.append(&extra).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let after = Wal::replay(&path).unwrap();
        prop_assert_eq!(after.len(), replayed.len() + 1);
        prop_assert_eq!(after.last().unwrap(), &extra);
    }

    /// Flip any single bit anywhere in the file: replay never panics,
    /// never returns a record that differs from what was acked, and
    /// stops at (or before) the damaged frame.
    #[test]
    fn single_bit_flip_never_yields_corrupt_records(
        n in 1usize..30,
        key_len in 1usize..16,
        val_len in 0usize..48,
        flip_frac in 0u32..1000,
        flip_bit in 0u32..8,
    ) {
        let path = fresh_wal("flip");
        let acked = write_log(&path, n, key_len, val_len);
        let mut raw = std::fs::read(&path).unwrap();
        let pos = (raw.len() as u64 * u64::from(flip_frac) / 1000) as usize;
        let pos = pos.min(raw.len() - 1);
        raw[pos] ^= 1 << flip_bit;
        std::fs::write(&path, &raw).unwrap();

        let replayed = Wal::replay(&path).unwrap();
        // A flipped length field can make a frame swallow its successors
        // (CRC still catches it) — but nothing replayed may be corrupt.
        assert_is_prefix(&replayed, &acked);

        // AbsoluteConsistency refuses the damaged log outright unless the
        // flip somehow left a fully-valid file (CRC collision: with
        // crc32c over these sizes, effectively impossible; a flip inside
        // trailing zero padding cannot exist since frames are exact).
        let scan = Wal::scan(&RealFs, &path, WalRecoveryMode::AbsoluteConsistency);
        if replayed.len() == acked.len() {
            prop_assert!(scan.is_ok());
        } else {
            prop_assert!(scan.is_err(), "damage dropped records but absolute mode accepted");
        }
    }

    /// Damage plus reopen-append plus re-damage: iterating the repair
    /// cycle never loses post-repair acked records.
    #[test]
    fn repeated_tear_repair_cycles_preserve_reachability(
        n in 1usize..12,
        cuts in proptest::collection::vec(0u32..=1000u32, 1..4),
    ) {
        let path = fresh_wal("cycle");
        let mut acked = write_log(&path, n, 8, 16);
        for (round, cut_frac) in cuts.iter().enumerate() {
            let raw = std::fs::read(&path).unwrap();
            let cut = (raw.len() as u64 * u64::from(*cut_frac) / 1000) as usize;
            std::fs::write(&path, &raw[..cut]).unwrap();
            let (mut wal, rec) =
                Wal::open(RealFs::shared(), &path, false, WalRecoveryMode::default()).unwrap();
            assert_is_prefix(&rec.records, &acked);
            acked = rec.records.clone();
            let extra = WalRecord::Put {
                cf: 0,
                key: format!("round-{round}").into_bytes(),
                value: vec![round as u8; 8],
            };
            wal.append(&extra).unwrap();
            wal.sync().unwrap();
            acked.push(extra);
            drop(wal);
            let now = Wal::replay(&path).unwrap();
            prop_assert_eq!(&now, &acked, "acked records lost after repair cycle {}", round);
        }
    }
}
