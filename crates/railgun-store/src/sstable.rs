//! Immutable sorted-string tables.
//!
//! An SSTable is one sorted run of the LSM tree, produced by flushing a
//! memtable or by compaction. The file layout is:
//!
//! ```text
//! +--------------------+
//! | data block 0       |  entries sorted by key, ~4 KiB each,
//! | data block 1       |  trailed by a CRC-32C
//! | ...                |
//! +--------------------+
//! | index block        |  (first_key, offset, len) per data block
//! +--------------------+
//! | bloom filter       |  over all keys in the table
//! +--------------------+
//! | footer (40 bytes)  |  offsets + magic
//! +--------------------+
//! ```
//!
//! Entries carry tombstones (`None` values) so deletions shadow older runs
//! until compaction drops them.
//!
//! Readers load the file once and keep it in memory (the role RocksDB's
//! block cache plays); block CRCs are verified on first access.

use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut, Bytes};
use railgun_types::encode::{crc32c, get_bytes, get_uvarint, put_bytes, put_uvarint};
use railgun_types::{RailgunError, Result};

use crate::bloom::BloomFilter;
use crate::memtable::Entry;
use crate::vfs::{FsFile, StoreFs};

const MAGIC: u64 = 0x5241_494c_5353_5401; // "RAILSST" v1
const FOOTER_LEN: usize = 48;
/// Target uncompressed size of one data block.
pub const DEFAULT_BLOCK_SIZE: usize = 4096;

/// Value tag: 0 encodes a tombstone, `len + 1` encodes a live value.
#[inline]
fn value_tag(entry: &Entry) -> u64 {
    match entry {
        None => 0,
        Some(v) => v.len() as u64 + 1,
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Streaming SSTable writer. Keys must be added in strictly increasing order.
pub struct SstWriter {
    path: PathBuf,
    out: BufWriter<Box<dyn FsFile>>,
    block: Vec<u8>,
    block_size: usize,
    /// (first_key, offset, len) per finished block.
    index: Vec<(Vec<u8>, u64, u64)>,
    block_first_key: Option<Vec<u8>>,
    last_key: Option<Vec<u8>>,
    keys: Vec<Vec<u8>>,
    offset: u64,
    entry_count: u64,
    bloom_bits_per_key: usize,
}

impl SstWriter {
    /// Create a writer for `path` on `fs`, truncating any existing file.
    pub fn create(
        fs: &dyn StoreFs,
        path: &Path,
        block_size: usize,
        bloom_bits_per_key: usize,
    ) -> Result<Self> {
        let file = fs.create(path)?;
        Ok(SstWriter {
            path: path.to_path_buf(),
            out: BufWriter::new(file),
            block: Vec::with_capacity(block_size + 256),
            block_size,
            index: Vec::new(),
            block_first_key: None,
            last_key: None,
            keys: Vec::new(),
            offset: 0,
            entry_count: 0,
            bloom_bits_per_key,
        })
    }

    /// Append an entry; keys must arrive in strictly increasing order.
    pub fn add(&mut self, key: &[u8], entry: &Entry) -> Result<()> {
        if let Some(last) = &self.last_key {
            if key <= last.as_slice() {
                return Err(RailgunError::Storage(format!(
                    "SstWriter keys out of order: {key:?} after {last:?}"
                )));
            }
        }
        if self.block_first_key.is_none() {
            self.block_first_key = Some(key.to_vec());
        }
        put_uvarint(&mut self.block, key.len() as u64);
        put_uvarint(&mut self.block, value_tag(entry));
        self.block.put_slice(key);
        if let Some(v) = entry {
            self.block.put_slice(v);
        }
        self.last_key = Some(key.to_vec());
        self.keys.push(key.to_vec());
        self.entry_count += 1;
        if self.block.len() >= self.block_size {
            self.finish_block()?;
        }
        Ok(())
    }

    fn finish_block(&mut self) -> Result<()> {
        if self.block.is_empty() {
            return Ok(());
        }
        let crc = crc32c(&self.block);
        self.out.write_all(&self.block)?;
        self.out.write_all(&crc.to_le_bytes())?;
        let len = self.block.len() as u64 + 4;
        let first = self
            .block_first_key
            .take()
            .expect("non-empty block has a first key");
        self.index.push((first, self.offset, len));
        self.offset += len;
        self.block.clear();
        Ok(())
    }

    /// Finish the table: write index, bloom, and footer. Returns metadata.
    pub fn finish(mut self) -> Result<SstMeta> {
        self.finish_block()?;
        // Index block.
        let mut index_buf = Vec::new();
        put_uvarint(&mut index_buf, self.index.len() as u64);
        for (first, off, len) in &self.index {
            put_bytes(&mut index_buf, first);
            put_uvarint(&mut index_buf, *off);
            put_uvarint(&mut index_buf, *len);
        }
        let index_crc = crc32c(&index_buf);
        index_buf.extend_from_slice(&index_crc.to_le_bytes());
        let index_off = self.offset;
        self.out.write_all(&index_buf)?;
        // Bloom filter.
        let bloom = BloomFilter::build(&self.keys, self.bloom_bits_per_key);
        let mut bloom_buf = Vec::new();
        bloom.encode(&mut bloom_buf);
        let bloom_off = index_off + index_buf.len() as u64;
        self.out.write_all(&bloom_buf)?;
        // Footer.
        let mut footer = Vec::with_capacity(FOOTER_LEN);
        footer.put_u64_le(index_off);
        footer.put_u64_le(index_buf.len() as u64);
        footer.put_u64_le(bloom_off);
        footer.put_u64_le(bloom_buf.len() as u64);
        footer.put_u64_le(self.entry_count);
        footer.put_u64_le(MAGIC);
        self.out.write_all(&footer)?;
        self.out.flush()?;
        self.out.get_mut().sync_all()?;
        let smallest = self.index.first().map(|(k, _, _)| k.clone());
        let largest = self.last_key.clone();
        Ok(SstMeta {
            path: self.path,
            entry_count: self.entry_count,
            smallest,
            largest,
            file_bytes: bloom_off + bloom_buf.len() as u64 + FOOTER_LEN as u64,
        })
    }
}

/// Metadata describing a finished SSTable.
#[derive(Debug, Clone)]
pub struct SstMeta {
    pub path: PathBuf,
    pub entry_count: u64,
    pub smallest: Option<Vec<u8>>,
    pub largest: Option<Vec<u8>>,
    pub file_bytes: u64,
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// A decoded (key, entry) pair from a data block.
pub type KvEntry = (Vec<u8>, Entry);

/// Reader over one immutable SSTable, fully resident in memory.
pub struct SstReader {
    data: Bytes,
    /// (first_key, offset, len) per data block.
    index: Vec<(Vec<u8>, u64, u64)>,
    bloom: BloomFilter,
    entry_count: u64,
}

impl SstReader {
    /// Open and parse `path` via `fs`.
    pub fn open(fs: &dyn StoreFs, path: &Path) -> Result<Self> {
        Self::from_bytes(Bytes::from(fs.read(path)?))
    }

    /// Parse a table already resident in memory.
    pub fn from_bytes(data: Bytes) -> Result<Self> {
        if data.len() < FOOTER_LEN {
            return Err(RailgunError::Corruption("sst smaller than footer".into()));
        }
        let mut footer = &data[data.len() - FOOTER_LEN..];
        let index_off = footer.get_u64_le() as usize;
        let index_len = footer.get_u64_le() as usize;
        let bloom_off = footer.get_u64_le() as usize;
        let bloom_len = footer.get_u64_le() as usize;
        let entry_count = footer.get_u64_le();
        let magic = footer.get_u64_le();
        if magic != MAGIC {
            return Err(RailgunError::Corruption("bad sst magic".into()));
        }
        if index_off + index_len > data.len() || bloom_off + bloom_len > data.len() {
            return Err(RailgunError::Corruption("sst footer offsets out of range".into()));
        }
        // Index (with trailing CRC).
        if index_len < 4 {
            return Err(RailgunError::Corruption("sst index too small".into()));
        }
        let index_raw = &data[index_off..index_off + index_len - 4];
        let stored_crc = u32::from_le_bytes(
            data[index_off + index_len - 4..index_off + index_len]
                .try_into()
                .expect("4-byte slice"),
        );
        if crc32c(index_raw) != stored_crc {
            return Err(RailgunError::Corruption("sst index crc mismatch".into()));
        }
        let mut cur = index_raw;
        let n = get_uvarint(&mut cur)? as usize;
        let mut index = Vec::with_capacity(n);
        for _ in 0..n {
            let first = get_bytes(&mut cur)?;
            let off = get_uvarint(&mut cur)?;
            let len = get_uvarint(&mut cur)?;
            index.push((first, off, len));
        }
        // Bloom.
        let mut bloom_slice = &data[bloom_off..bloom_off + bloom_len];
        let bloom = BloomFilter::decode(&mut bloom_slice)?;
        Ok(SstReader {
            data,
            index,
            bloom,
            entry_count,
        })
    }

    /// Number of entries (tombstones included).
    pub fn entry_count(&self) -> u64 {
        self.entry_count
    }

    /// Total file size in bytes.
    pub fn file_bytes(&self) -> usize {
        self.data.len()
    }

    /// Point lookup. `None` = key not in this table; `Some(None)` =
    /// tombstone; `Some(Some(v))` = live value.
    pub fn get(&self, key: &[u8]) -> Result<Option<Entry>> {
        if self.index.is_empty() || !self.bloom.may_contain(key) {
            return Ok(None);
        }
        // Find the last block whose first_key <= key.
        let block_idx = match self
            .index
            .binary_search_by(|(first, _, _)| first.as_slice().cmp(key))
        {
            Ok(i) => i,
            Err(0) => return Ok(None),
            Err(i) => i - 1,
        };
        for (k, v) in self.block_entries(block_idx)? {
            match k.as_slice().cmp(key) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => return Ok(Some(v)),
                std::cmp::Ordering::Greater => return Ok(None),
            }
        }
        Ok(None)
    }

    /// Decode all entries of block `idx`, verifying its CRC.
    fn block_entries(&self, idx: usize) -> Result<Vec<KvEntry>> {
        let (_, off, len) = &self.index[idx];
        let (off, len) = (*off as usize, *len as usize);
        if len < 4 || off + len > self.data.len() {
            return Err(RailgunError::Corruption("block out of range".into()));
        }
        let payload = &self.data[off..off + len - 4];
        let stored_crc =
            u32::from_le_bytes(self.data[off + len - 4..off + len].try_into().expect("4b"));
        if crc32c(payload) != stored_crc {
            return Err(RailgunError::Corruption(format!(
                "block {idx} crc mismatch"
            )));
        }
        let mut cur = payload;
        let mut out = Vec::new();
        while cur.has_remaining() {
            let klen = get_uvarint(&mut cur)? as usize;
            let vtag = get_uvarint(&mut cur)?;
            if cur.remaining() < klen {
                return Err(RailgunError::Corruption("truncated block key".into()));
            }
            let key = cur[..klen].to_vec();
            cur.advance(klen);
            let entry = if vtag == 0 {
                None
            } else {
                let vlen = (vtag - 1) as usize;
                if cur.remaining() < vlen {
                    return Err(RailgunError::Corruption("truncated block value".into()));
                }
                let v = cur[..vlen].to_vec();
                cur.advance(vlen);
                Some(v)
            };
            out.push((key, entry));
        }
        Ok(out)
    }

    /// Iterate every entry in key order. Corrupt blocks end the iteration.
    pub fn iter(&self) -> SstIter<'_> {
        SstIter {
            reader: self,
            block: 0,
            entries: Vec::new(),
            pos: 0,
        }
    }

    /// Iterate entries with keys in `[start, end)`.
    pub fn range<'a>(&'a self, start: &[u8], end: Option<&[u8]>) -> SstRangeIter<'a> {
        // First candidate block: the last block whose first key <= start.
        let block = match self
            .index
            .binary_search_by(|(first, _, _)| first.as_slice().cmp(start))
        {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        SstRangeIter {
            inner: SstIter {
                reader: self,
                block,
                entries: Vec::new(),
                pos: 0,
            },
            start: start.to_vec(),
            end: end.map(<[u8]>::to_vec),
        }
    }
}

/// Full-table iterator.
pub struct SstIter<'a> {
    reader: &'a SstReader,
    block: usize,
    entries: Vec<KvEntry>,
    pos: usize,
}

impl Iterator for SstIter<'_> {
    type Item = KvEntry;

    fn next(&mut self) -> Option<KvEntry> {
        loop {
            if self.pos < self.entries.len() {
                let item = std::mem::take(&mut self.entries[self.pos]);
                self.pos += 1;
                return Some(item);
            }
            if self.block >= self.reader.index.len() {
                return None;
            }
            self.entries = self.reader.block_entries(self.block).ok()?;
            self.block += 1;
            self.pos = 0;
        }
    }
}

/// Range-bounded iterator.
pub struct SstRangeIter<'a> {
    inner: SstIter<'a>,
    start: Vec<u8>,
    end: Option<Vec<u8>>,
}

impl Iterator for SstRangeIter<'_> {
    type Item = KvEntry;

    fn next(&mut self) -> Option<KvEntry> {
        for (k, v) in self.inner.by_ref() {
            if k.as_slice() < self.start.as_slice() {
                continue;
            }
            if let Some(end) = &self.end {
                if k.as_slice() >= end.as_slice() {
                    return None;
                }
            }
            return Some((k, v));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::RealFs;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("railgun-sst-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn build_table(name: &str, n: u32) -> (PathBuf, SstMeta) {
        let dir = tmpdir(name);
        let path = dir.join("t.sst");
        let mut w = SstWriter::create(&RealFs, &path, 256, 10).unwrap();
        for i in 0..n {
            let key = format!("key{i:06}");
            let entry = if i % 7 == 3 {
                None
            } else {
                Some(format!("value-{i}").into_bytes())
            };
            w.add(key.as_bytes(), &entry).unwrap();
        }
        let meta = w.finish().unwrap();
        (path, meta)
    }

    #[test]
    fn roundtrip_point_reads() {
        let (path, meta) = build_table("point", 500);
        assert_eq!(meta.entry_count, 500);
        let r = SstReader::open(&RealFs, &path).unwrap();
        assert_eq!(r.entry_count(), 500);
        assert_eq!(
            r.get(b"key000000").unwrap(),
            Some(Some(b"value-0".to_vec()))
        );
        assert_eq!(r.get(b"key000003").unwrap(), Some(None)); // tombstone
        assert_eq!(r.get(b"key000499").unwrap(), Some(Some(b"value-499".to_vec())));
        assert_eq!(r.get(b"absent").unwrap(), None);
        assert_eq!(r.get(b"zzz").unwrap(), None);
    }

    #[test]
    fn writer_rejects_unsorted_keys() {
        let dir = tmpdir("unsorted");
        let mut w = SstWriter::create(&RealFs, &dir.join("u.sst"), 256, 10).unwrap();
        w.add(b"b", &Some(vec![1])).unwrap();
        assert!(w.add(b"a", &Some(vec![2])).is_err());
        assert!(w.add(b"b", &Some(vec![2])).is_err()); // duplicates too
    }

    #[test]
    fn full_iteration_is_sorted_and_complete() {
        let (path, _) = build_table("iter", 300);
        let r = SstReader::open(&RealFs, &path).unwrap();
        let all: Vec<_> = r.iter().collect();
        assert_eq!(all.len(), 300);
        for w in all.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn range_iteration_bounds() {
        let (path, _) = build_table("range", 100);
        let r = SstReader::open(&RealFs, &path).unwrap();
        let slice: Vec<_> = r
            .range(b"key000010", Some(b"key000020"))
            .map(|(k, _)| k)
            .collect();
        assert_eq!(slice.len(), 10);
        assert_eq!(slice[0], b"key000010".to_vec());
        assert_eq!(slice[9], b"key000019".to_vec());
        // Open-ended range reaches the last key.
        let tail: Vec<_> = r.range(b"key000098", None).collect();
        assert_eq!(tail.len(), 2);
    }

    #[test]
    fn range_start_before_first_key() {
        let (path, _) = build_table("rangefront", 10);
        let r = SstReader::open(&RealFs, &path).unwrap();
        let all: Vec<_> = r.range(b"a", None).collect();
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn corrupted_block_detected() {
        let (path, _) = build_table("corrupt", 200);
        let mut raw = std::fs::read(&path).unwrap();
        raw[10] ^= 0xff; // flip a data byte in the first block
        std::fs::write(&path, &raw).unwrap();
        let r = SstReader::open(&RealFs, &path);
        // Either open fails (entry counting touches the block) or get fails.
        if let Ok(r) = r {
            assert!(r.get(b"key000000").is_err());
        }
    }

    #[test]
    fn corrupted_magic_detected() {
        let (path, _) = build_table("magic", 10);
        let mut raw = std::fs::read(&path).unwrap();
        let n = raw.len();
        raw[n - 1] ^= 0xff;
        std::fs::write(&path, &raw).unwrap();
        assert!(SstReader::open(&RealFs, &path).is_err());
    }

    #[test]
    fn empty_table_is_readable() {
        let dir = tmpdir("empty");
        let path = dir.join("e.sst");
        let w = SstWriter::create(&RealFs, &path, 256, 10).unwrap();
        let meta = w.finish().unwrap();
        assert_eq!(meta.entry_count, 0);
        let r = SstReader::open(&RealFs, &path).unwrap();
        assert_eq!(r.get(b"k").unwrap(), None);
        assert_eq!(r.iter().count(), 0);
    }
}
