//! Deterministic crash-torture harness.
//!
//! The recovery claims of this crate (WAL torn-tail handling, atomic
//! manifest replacement, orphan quarantine, checkpoint completeness) are
//! only as good as their tests. This module proves them by brute force:
//!
//! 1. **Profile pass** — run a fixed mixed put/delete/flush/compact/
//!    expire/checkpoint workload ([`build_workload`]) over an *unarmed*
//!    [`FaultFs`], counting how often every registered crash point
//!    ([`crash_points::ALL`]) is reached. Every point must be hit at
//!    least once — a point the workload cannot reach is a hole in the
//!    sweep, and the harness fails loudly.
//! 2. **Sweep** — for each point, re-run the same workload with a
//!    [`CrashPlan`] armed at a spread of hit indices. The trip freezes
//!    the filesystem, leaving the backing directory as the exact on-disk
//!    image of a crash at that instant.
//! 3. **Recover and verify** — reopen the frozen image with [`RealFs`]
//!    and assert the contract:
//!    * no acknowledged write is lost and no unacknowledged write
//!      appears (the single in-flight operation may land either way —
//!      both outcomes are legal for an un-acked op);
//!    * [`Db::verify_integrity`] passes — every SSTable decodes fully
//!      and the WAL scans cleanly;
//!    * every *acknowledged* checkpoint is complete
//!      ([`crate::checkpoint::is_complete`]) and restores to exactly the
//!      model state at its creation; a checkpoint interrupted by the
//!      crash is either detectably incomplete or fully correct.
//!
//! The workload runs with `sync_wal = true`, so "acknowledged" means
//! "durable by contract": `put`/`delete` return only after the WAL frame
//! is fsynced. That is what licenses the loss check — anything the model
//! recorded as acked *must* survive.
//!
//! Both column families carry a watermark-driven [`CompactionFilter`]:
//! [`Op::ExpireBefore`] advances a shared atomic horizon, and compactions
//! drop *expirable* keys (a fixed subset of the key space) whose value
//! tick is below it — the store's capacity-reclaim path. The verification
//! contract extends accordingly: an acked expired key may read back as
//! its acked value **or** be absent (the filter ran), never anything
//! else; non-expirable and fresh keys stay exact. After recovery the
//! harness additionally forces a flush + compaction of both CFs at the
//! crash-time horizon and asserts every expired key is gone and every
//! live one intact — filtered keys never resurrect, live keys are never
//! lost.
//!
//! Shared by the `crash_torture` integration test (every point, every
//! time) and the `fig_recovery` bench (which additionally reports
//! recovery wall-times, committed as `BENCH_recovery.json`).

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use railgun_types::{RailgunError, Result};

use crate::db::{Db, DbOptions, RecoveryReport};
use crate::options::{CfOptions, CompactionFilter, FilterDecision};
use crate::vfs::{crash_points, is_injected, CrashPlan, FaultFs, RealFs, StoreFs};

/// One operation of the deterministic torture workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Write `key` (into the aux column family when `aux`); the value is
    /// derived from `(key, tick)` so overwrites are distinguishable.
    Put { aux: bool, key: u64, tick: u64 },
    /// Delete `key` (from the aux column family when `aux`).
    Delete { aux: bool, key: u64 },
    /// Flush all memtables (also fires implicitly via the tiny budget).
    Flush,
    /// Compact both column families.
    Compact,
    /// Advance the shared expiry horizon to tick `.0` — expirable keys
    /// whose last acked tick is below it become eligible for
    /// compaction-filter discard.
    ExpireBefore(u64),
    /// Create checkpoint number `.0` next to the database.
    Checkpoint(u32),
}

/// Keys in this subset of the 41-key space are subject to expiry (both
/// column families) — `key0010`, `key0025`, `key0040` land in aux.
fn expirable(key: u64) -> bool {
    key % 3 == 1
}

/// Parse `key{k:04}` back to `k`.
fn parse_key_no(key: &[u8]) -> Option<u64> {
    let digits = key.strip_prefix(b"key")?;
    std::str::from_utf8(digits).ok()?.parse().ok()
}

/// Parse the tick out of `val{k:04}-{tick:08}-…` (bytes 8..16).
fn value_tick(value: &[u8]) -> Option<u64> {
    std::str::from_utf8(value.get(8..16)?).ok()?.parse().ok()
}

/// The torture workload's watermark filter: discard expirable keys whose
/// value tick is below the shared horizon. Pure (verdict depends only on
/// the key/value pair and the current horizon) and monotonic (the
/// horizon only advances) — the [`CompactionFilter`] contract.
#[derive(Debug)]
pub struct TortureFilter {
    horizon: Arc<AtomicU64>,
}

impl CompactionFilter for TortureFilter {
    fn name(&self) -> &str {
        "torture-expiry"
    }
    fn filter(&self, key: &[u8], value: &[u8]) -> FilterDecision {
        match (parse_key_no(key), value_tick(value)) {
            (Some(k), Some(t)) if expirable(k) && t < self.horizon.load(Ordering::Relaxed) => {
                FilterDecision::Discard
            }
            _ => FilterDecision::Keep,
        }
    }
}

/// splitmix64 — the same tiny PRNG [`FaultFs`] uses for tear lengths.
fn splitmix(s: &mut u64) -> u64 {
    *s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *s;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The deterministic mixed workload: ~70% puts / ~20% deletes over a
/// 41-key space (so deletes and overwrites actually collide), explicit
/// flushes, compactions, and periodic checkpoints. Identical for every
/// run of the same `n` — determinism is what lets the sweep re-run the
/// exact same operation sequence per crash plan.
pub fn build_workload(n: usize) -> Vec<Op> {
    let mut rng = 0x0dd_ba11u64;
    let mut out = Vec::with_capacity(n);
    let mut ckpt = 0u32;
    for i in 0..n {
        if i % 97 == 96 {
            out.push(Op::Checkpoint(ckpt));
            ckpt += 1;
        } else if i % 61 == 60 {
            // Trail the workload by a fixed lag so some (not all) keys'
            // latest writes fall below the horizon — the 41-key space is
            // recycled fast, so a short lag keeps both populations
            // (expired and live expirable keys) present at compactions.
            out.push(Op::ExpireBefore((i as u64).saturating_sub(55)));
        } else if i % 53 == 52 {
            out.push(Op::Compact);
        } else if i % 31 == 30 {
            out.push(Op::Flush);
        } else {
            let r = splitmix(&mut rng);
            let key = splitmix(&mut rng) % 41;
            let aux = key.is_multiple_of(5);
            if r.is_multiple_of(4) {
                out.push(Op::Delete { aux, key });
            } else {
                out.push(Op::Put {
                    aux,
                    key,
                    tick: i as u64,
                });
            }
        }
    }
    out
}

fn key_bytes(key: u64) -> Vec<u8> {
    format!("key{key:04}").into_bytes()
}

fn value_bytes(key: u64, tick: u64) -> Vec<u8> {
    format!("val{key:04}-{tick:08}-{:016x}", key.wrapping_mul(tick | 1))
        .repeat(2)
        .into_bytes()
}

/// Store tuning for the torture workload: a tiny memtable budget so
/// automatic flushes and compactions fire constantly, and `sync_wal` so
/// every acknowledged write is durable by contract — the property the
/// sweep asserts. A zero horizon makes the expiry filter a no-op.
pub fn torture_opts(fs: Arc<dyn StoreFs>) -> DbOptions {
    torture_opts_with(fs, Arc::new(AtomicU64::new(0)))
}

/// [`torture_opts`] with the [`TortureFilter`] installed on both column
/// families at the given shared horizon.
pub fn torture_opts_with(fs: Arc<dyn StoreFs>, horizon: Arc<AtomicU64>) -> DbOptions {
    let cf = |horizon: &Arc<AtomicU64>| CfOptions {
        memtable_budget_bytes: 1024,
        compaction_trigger: 3,
        ..CfOptions::default()
    }
    .with_filter(Arc::new(TortureFilter {
        horizon: Arc::clone(horizon),
    }));
    DbOptions {
        memtable_budget_bytes: 1024,
        compaction_trigger: 3,
        sync_wal: true,
        fs,
        cf_options: vec![("default".to_owned(), cf(&horizon)), ("aux".to_owned(), cf(&horizon))],
        ..DbOptions::default()
    }
}

/// `(aux?, key)` → acked state (`None` = acked delete).
type ModelKey = (bool, Vec<u8>);
/// An in-flight KV op: target key and intended new value (`None` =
/// delete). After a crash either the old or the new state is legal.
type PendingKv = (ModelKey, Option<Vec<u8>>);
type Model = HashMap<ModelKey, Option<Vec<u8>>>;

/// Everything the workload run learned: the acked model, per-checkpoint
/// snapshots, and what (if anything) was in flight at the crash.
#[derive(Debug, Default)]
struct RunState {
    model: Model,
    /// Expiry horizon at the crash (acked `ExpireBefore` high-water mark).
    horizon: u64,
    /// `(index, model, horizon)` snapshot at each *acknowledged*
    /// checkpoint.
    ckpts: Vec<(u32, Model, u64)>,
    /// Checkpoint in flight when the crash tripped.
    pending_ckpt: Option<u32>,
    /// KV op in flight when the crash tripped: target and intended new
    /// state. Either the old or the new state is legal after recovery.
    pending_kv: Option<PendingKv>,
    acked_ops: usize,
    tripped: bool,
}

/// True iff the acked state `(key, value)` is fair game for the filter
/// at `horizon` — such a key may legally read back as absent.
fn may_expire(key: &[u8], value: &[u8], horizon: u64) -> bool {
    parse_key_no(key).is_some_and(expirable)
        && value_tick(value).is_some_and(|t| t < horizon)
}

/// Outcome of torturing one crash plan.
#[derive(Debug, Clone)]
pub struct PointResult {
    pub plan: CrashPlan,
    /// Whether the armed fault actually fired (always true for plans
    /// derived from the profile pass).
    pub tripped: bool,
    /// Operations acknowledged before the crash.
    pub acked_ops: usize,
    /// What the post-crash open repaired.
    pub recovery: RecoveryReport,
    /// Wall-time of the post-crash `Db::open`.
    pub recovery_micros: u128,
}

/// Outcome of a full sweep.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// One entry per `(point, hit)` plan, in sweep order.
    pub results: Vec<PointResult>,
    /// `(point, times reached)` from the unarmed profile pass.
    pub profile: Vec<(&'static str, u64)>,
    /// Recovery wall-time of the crash-free control run.
    pub clean_recovery_micros: u128,
}

fn err(plan: &str, msg: String) -> RailgunError {
    RailgunError::Storage(format!("crash-torture [{plan}]: {msg}"))
}

fn run_workload(root: &Path, fs: Arc<dyn StoreFs>, ops: &[Op]) -> Result<RunState> {
    let mut st = RunState::default();
    let horizon = Arc::new(AtomicU64::new(0));
    let db = match Db::open(
        &root.join("db"),
        torture_opts_with(Arc::clone(&fs), Arc::clone(&horizon)),
    ) {
        Ok(db) => db,
        Err(e) if is_injected(&e) => {
            st.tripped = true;
            return Ok(st);
        }
        Err(e) => return Err(e),
    };
    let aux = match db.create_cf("aux") {
        Ok(id) => id,
        Err(e) if is_injected(&e) => {
            st.tripped = true;
            return Ok(st);
        }
        Err(e) => return Err(e),
    };
    for op in ops {
        let r: Result<()> = match op {
            Op::Put { aux: a, key, tick } => {
                let k = key_bytes(*key);
                let v = value_bytes(*key, *tick);
                let cf = if *a { aux } else { Db::DEFAULT_CF };
                let res = db.put(cf, &k, &v);
                if res.is_ok() {
                    st.model.insert((*a, k), Some(v));
                } else {
                    st.pending_kv = Some(((*a, k), Some(v)));
                }
                res
            }
            Op::Delete { aux: a, key } => {
                let k = key_bytes(*key);
                let cf = if *a { aux } else { Db::DEFAULT_CF };
                let res = db.delete(cf, &k);
                if res.is_ok() {
                    st.model.insert((*a, k), None);
                } else {
                    st.pending_kv = Some(((*a, k), None));
                }
                res
            }
            Op::Flush => db.flush(),
            Op::Compact => db
                .compact_cf(Db::DEFAULT_CF)
                .and_then(|()| db.compact_cf(aux)),
            Op::ExpireBefore(t) => {
                // Purely in-memory: cannot trip a storage fault, takes
                // effect at the next compaction.
                horizon.fetch_max(*t, Ordering::Relaxed);
                st.horizon = st.horizon.max(*t);
                Ok(())
            }
            Op::Checkpoint(ix) => {
                let res = db.checkpoint(&root.join(format!("ckpt-{ix}")));
                if res.is_ok() {
                    st.ckpts.push((*ix, st.model.clone(), st.horizon));
                } else {
                    st.pending_ckpt = Some(*ix);
                }
                res
            }
        };
        match r {
            Ok(()) => st.acked_ops += 1,
            Err(e) if is_injected(&e) => {
                st.tripped = true;
                break;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(st)
}

/// Check `db` against an exact expected state (used for checkpoints,
/// where no op can be in flight), relaxed only by the expiry horizon in
/// force when the snapshot was taken.
fn verify_exact(plan: &str, db: &Db, model: &Model, horizon: u64) -> Result<()> {
    verify_state(plan, db, model, None, horizon)
}

fn verify_state(
    plan: &str,
    db: &Db,
    model: &Model,
    pending: Option<&PendingKv>,
    horizon: u64,
) -> Result<()> {
    let aux_cf = db.cf_by_name("aux");
    let get = |a: bool, k: &[u8]| -> Result<Option<Vec<u8>>> {
        match (a, aux_cf) {
            (false, _) => db.get(Db::DEFAULT_CF, k),
            (true, Some(id)) => db.get(id, k),
            (true, None) => Ok(None),
        }
    };
    if aux_cf.is_none() && model.keys().any(|(a, _)| *a) {
        return Err(err(plan, "acknowledged aux column family lost".into()));
    }
    // Every acked write must read back exactly — except an acked value
    // below the expiry horizon, which the compaction filter may already
    // have reclaimed: its acked value or absence are both legal, nothing
    // else is.
    for (id @ (a, k), expect) in model {
        if pending.is_some_and(|(pid, _)| pid == id) {
            continue; // re-targeted by the in-flight op, checked below
        }
        let got = get(*a, k)?;
        if got.as_deref() != expect.as_deref() {
            let expired_ok = got.is_none()
                && expect
                    .as_deref()
                    .is_some_and(|v| may_expire(k, v, horizon));
            if !expired_ok {
                return Err(err(
                    plan,
                    format!(
                        "acked write lost: cf(aux={a}) key {:?} expected {:?} got {:?}",
                        String::from_utf8_lossy(k),
                        expect.as_ref().map(|v| v.len()),
                        got.as_ref().map(|v| v.len())
                    ),
                ));
            }
        }
    }
    // The in-flight op may have landed or not — both are legal, nothing
    // else is.
    if let Some(((a, k), new_state)) = pending {
        let got = get(*a, k)?;
        let old_state = model.get(&(*a, k.clone())).cloned().flatten();
        let ok = got.as_deref() == new_state.as_deref() || got.as_deref() == old_state.as_deref();
        if !ok {
            return Err(err(
                plan,
                format!(
                    "in-flight op on key {:?} left a third state",
                    String::from_utf8_lossy(k)
                ),
            ));
        }
    }
    // No unacknowledged key may appear out of nowhere.
    type ScanDump = Vec<(Vec<u8>, Vec<u8>)>;
    let mut scans: Vec<(bool, ScanDump)> = vec![(false, db.scan(Db::DEFAULT_CF, b"", None)?)];
    if let Some(id) = aux_cf {
        scans.push((true, db.scan(id, b"", None)?));
    }
    for (a, entries) in scans {
        for (k, v) in entries {
            let id = (a, k);
            let from_pending = pending.is_some_and(|(pid, new_state)| {
                *pid == id && new_state.as_deref() == Some(v.as_slice())
            });
            let from_model = model.get(&id).is_some_and(|e| e.as_deref() == Some(v.as_slice()));
            // An overwritten/deleted pending key may legally still show
            // its old model value — that is `from_model`.
            if !from_model && !from_pending {
                return Err(err(
                    plan,
                    format!(
                        "unacknowledged key {:?} surfaced after recovery",
                        String::from_utf8_lossy(&id.1)
                    ),
                ));
            }
        }
    }
    Ok(())
}

fn recover_and_verify(plan: &str, root: &Path, st: &RunState) -> Result<(RecoveryReport, u128)> {
    let t0 = Instant::now();
    let db = Db::open(
        &root.join("db"),
        torture_opts_with(RealFs::shared(), Arc::new(AtomicU64::new(st.horizon))),
    )
    .map_err(|e| err(plan, format!("recovery open failed: {e}")))?;
    let micros = t0.elapsed().as_micros();
    db.verify_integrity()
        .map_err(|e| err(plan, format!("integrity check failed: {e}")))?;
    verify_state(plan, &db, &st.model, st.pending_kv.as_ref(), st.horizon)?;
    // Acked checkpoints must be complete and restore byte-exactly (up to
    // expiry at their snapshot horizon).
    for (ix, snap, snap_horizon) in &st.ckpts {
        let target = root.join(format!("ckpt-{ix}"));
        if !crate::checkpoint::is_complete(&RealFs, &target) {
            return Err(err(plan, format!("acked checkpoint {ix} is incomplete")));
        }
        let cdb = Db::open(&target, torture_opts(RealFs::shared()))?;
        cdb.verify_integrity()
            .map_err(|e| err(plan, format!("checkpoint {ix} corrupt: {e}")))?;
        verify_exact(plan, &cdb, snap, *snap_horizon)?;
    }
    // An interrupted checkpoint is either detectably incomplete (the
    // restore path falls back to replay) or fully correct — never a
    // silently-wrong image.
    if let Some(ix) = st.pending_ckpt {
        let target = root.join(format!("ckpt-{ix}"));
        if crate::checkpoint::is_complete(&RealFs, &target) {
            let cdb = Db::open(&target, torture_opts(RealFs::shared()))?;
            cdb.verify_integrity()
                .map_err(|e| err(plan, format!("interrupted checkpoint {ix} corrupt: {e}")))?;
            verify_exact(plan, &cdb, &st.model, st.horizon)?;
        }
    }
    // Reclaim check: force a flush + filtered compaction of both CFs at
    // the crash-time horizon. Every expired acked key must now be gone
    // (filtered keys never resurrect — not from leftover input tables,
    // not from the WAL) and every live acked key must read back exactly
    // (the filter never eats live data).
    db.flush()
        .map_err(|e| err(plan, format!("post-recovery flush failed: {e}")))?;
    db.compact_cf(Db::DEFAULT_CF)
        .map_err(|e| err(plan, format!("post-recovery compact failed: {e}")))?;
    if let Some(aux) = db.cf_by_name("aux") {
        db.compact_cf(aux)
            .map_err(|e| err(plan, format!("post-recovery aux compact failed: {e}")))?;
    }
    let aux_cf = db.cf_by_name("aux");
    for (id @ (a, k), expect) in &st.model {
        if st.pending_kv.as_ref().is_some_and(|(pid, _)| pid == id) {
            continue;
        }
        let got = match (a, aux_cf) {
            (false, _) => db.get(Db::DEFAULT_CF, k)?,
            (true, Some(cf)) => db.get(cf, k)?,
            (true, None) => None,
        };
        match expect.as_deref() {
            Some(v) if may_expire(k, v, st.horizon) => {
                if got.is_some() {
                    return Err(err(
                        plan,
                        format!(
                            "expired key {:?} survived post-recovery compaction",
                            String::from_utf8_lossy(k)
                        ),
                    ));
                }
            }
            other => {
                if got.as_deref() != other {
                    return Err(err(
                        plan,
                        format!(
                            "live key {:?} damaged by post-recovery compaction",
                            String::from_utf8_lossy(k)
                        ),
                    ));
                }
            }
        }
    }
    Ok((db.recovery_report().clone(), micros))
}

fn fresh_root(root: &Path) -> Result<()> {
    std::fs::remove_dir_all(root).ok();
    std::fs::create_dir_all(root)?;
    Ok(())
}

/// Spread hit indices over `1..=max_hit`: always the first and last
/// occurrence, plus evenly spaced interior hits up to `per_point` total.
fn pick_hits(max_hit: u64, per_point: u64) -> Vec<u64> {
    let per_point = per_point.max(1);
    if max_hit <= per_point {
        return (1..=max_hit).collect();
    }
    let mut v = vec![1];
    for j in 1..per_point - 1 {
        v.push(1 + j * (max_hit - 1) / (per_point - 1));
    }
    v.push(max_hit);
    v.dedup();
    v
}

/// Run one armed plan end-to-end: fresh directory, workload to the trip,
/// recovery, full verification.
fn run_plan(root: &Path, seed: u64, plan: CrashPlan, ops: &[Op]) -> Result<PointResult> {
    let tag = format!("{}#{}", plan.point, plan.hit);
    fresh_root(root)?;
    let fault = FaultFs::new(seed);
    fault.arm(Some(plan));
    let st = run_workload(root, Arc::new(fault.clone()), ops)?;
    if !st.tripped {
        return Err(err(&tag, "plan never tripped".into()));
    }
    let (recovery, recovery_micros) = recover_and_verify(&tag, root, &st)?;
    Ok(PointResult {
        plan,
        tripped: st.tripped,
        acked_ops: st.acked_ops,
        recovery,
        recovery_micros,
    })
}

/// The full crash-point sweep.
///
/// `root` is scratch space, wiped per plan. `total_ops` sizes the
/// workload; `hits_per_point` bounds how many occurrences of each point
/// are armed (`pick_hits` spreads first/interior/last). Fails with a descriptive
/// [`RailgunError::Storage`] on the first contract violation.
pub fn sweep(root: &Path, total_ops: usize, seed: u64, hits_per_point: u64) -> Result<SweepReport> {
    let ops = build_workload(total_ops);
    // Profile pass: unarmed, must complete, counts every point's hits —
    // and doubles as the crash-free control for model verification and
    // the recovery-time baseline.
    fresh_root(root)?;
    let fault = FaultFs::new(seed);
    let st = run_workload(root, Arc::new(fault.clone()), &ops)?;
    if st.tripped {
        return Err(err("profile", "unarmed run tripped a fault".into()));
    }
    let (_, clean_recovery_micros) = recover_and_verify("profile", root, &st)?;
    let profile = fault.hit_profile();
    for point in crash_points::ALL {
        let hits = profile
            .iter()
            .find(|(p, _)| p == point)
            .map_or(0, |(_, n)| *n);
        if hits == 0 {
            return Err(err(
                "profile",
                format!("workload never reaches crash point {point} — sweep has a hole"),
            ));
        }
    }
    let mut results = Vec::new();
    for (point, max_hit) in &profile {
        for hit in pick_hits(*max_hit, hits_per_point) {
            results.push(run_plan(root, seed, CrashPlan { point, hit }, &ops)?);
        }
    }
    std::fs::remove_dir_all(root).ok();
    Ok(SweepReport {
        results,
        profile,
        clean_recovery_micros,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_and_mixed() {
        let a = build_workload(400);
        let b = build_workload(400);
        assert_eq!(a, b);
        let count = |f: fn(&Op) -> bool| a.iter().filter(|o| f(o)).count();
        assert!(count(|o| matches!(o, Op::Put { .. })) > 200);
        assert!(count(|o| matches!(o, Op::Delete { .. })) > 40);
        assert!(count(|o| matches!(o, Op::Flush)) >= 10);
        assert!(count(|o| matches!(o, Op::Compact)) >= 5);
        assert!(count(|o| matches!(o, Op::Checkpoint(_))) >= 4);
        // Enough horizon advances that some land above tick 0 (the first
        // two saturate to 0) — otherwise the filtered-compaction crash
        // points are unreachable.
        assert!(count(|o| matches!(o, Op::ExpireBefore(t) if *t > 0)) >= 3);
    }

    #[test]
    fn filter_predicates_parse_workload_values() {
        assert_eq!(parse_key_no(&key_bytes(7)), Some(7));
        assert_eq!(parse_key_no(b"nope"), None);
        assert_eq!(value_tick(&value_bytes(7, 123)), Some(123));
        assert_eq!(value_tick(b"short"), None);
        assert!(expirable(10) && expirable(25) && expirable(40));
        assert!(!expirable(9));
        let horizon = Arc::new(AtomicU64::new(100));
        let f = TortureFilter {
            horizon: Arc::clone(&horizon),
        };
        assert_eq!(
            f.filter(&key_bytes(10), &value_bytes(10, 50)),
            FilterDecision::Discard
        );
        assert_eq!(
            f.filter(&key_bytes(10), &value_bytes(10, 150)),
            FilterDecision::Keep
        );
        assert_eq!(
            f.filter(&key_bytes(9), &value_bytes(9, 50)),
            FilterDecision::Keep
        );
    }

    #[test]
    fn pick_hits_spreads_and_bounds() {
        assert_eq!(pick_hits(2, 3), vec![1, 2]);
        assert_eq!(pick_hits(3, 3), vec![1, 2, 3]);
        let picked = pick_hits(100, 3);
        assert_eq!(picked.first(), Some(&1));
        assert_eq!(picked.last(), Some(&100));
        assert!(picked.len() <= 3);
        assert_eq!(pick_hits(7, 1), vec![1, 7]);
    }
}
