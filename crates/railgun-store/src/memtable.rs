//! In-memory write buffer for one column family.
//!
//! The memtable is the mutable head of the LSM tree: the newest value (or
//! tombstone) for every recently-written key. When its approximate size
//! exceeds the configured budget, the [`crate::Db`] flushes it to an
//! immutable SSTable.

use std::collections::BTreeMap;
use std::ops::Bound;

/// A write: either a value or a deletion tombstone.
///
/// Tombstones must be retained (not just removed from the map) because an
/// older SSTable may still hold a live value for the key.
pub type Entry = Option<Vec<u8>>;

/// Sorted in-memory buffer of the most recent write per key.
#[derive(Debug, Default)]
pub struct MemTable {
    map: BTreeMap<Vec<u8>, Entry>,
    approx_bytes: usize,
}

impl MemTable {
    /// Create an empty memtable.
    pub fn new() -> Self {
        MemTable::default()
    }

    /// Insert or overwrite a value. Overwrites reuse the existing value
    /// allocation — the read-modify-write pattern of aggregation states
    /// hits the same keys constantly (§4.1.3).
    pub fn put(&mut self, key: &[u8], value: &[u8]) {
        if let Some(slot) = self.map.get_mut(key) {
            let old_val = slot.as_ref().map_or(0, Vec::len);
            match slot {
                Some(buf) => {
                    buf.clear();
                    buf.extend_from_slice(value);
                }
                None => *slot = Some(value.to_vec()),
            }
            self.approx_bytes = self.approx_bytes.saturating_sub(old_val) + value.len();
        } else {
            self.insert(key.to_vec(), Some(value.to_vec()));
        }
    }

    /// Record a deletion tombstone.
    pub fn delete(&mut self, key: &[u8]) {
        if let Some(slot) = self.map.get_mut(key) {
            let old_val = slot.as_ref().map_or(0, Vec::len);
            *slot = None;
            self.approx_bytes = self.approx_bytes.saturating_sub(old_val);
        } else {
            self.insert(key.to_vec(), None);
        }
    }

    fn insert(&mut self, key: Vec<u8>, entry: Entry) {
        let key_len = key.len();
        let new_val = entry.as_ref().map_or(0, Vec::len);
        if let Some(old) = self.map.insert(key, entry) {
            // Key bytes and per-entry overhead were accounted on first
            // insert; only the value delta changes.
            let old_val = old.as_ref().map_or(0, Vec::len);
            self.approx_bytes = self.approx_bytes.saturating_sub(old_val) + new_val;
        } else {
            // 32 bytes models BTreeMap node + Vec header overhead per entry.
            self.approx_bytes += key_len + new_val + 32;
        }
    }

    /// Look up the most recent write for `key`.
    ///
    /// Returns `None` if the key was never written here; `Some(None)` if the
    /// latest write is a tombstone; `Some(Some(v))` for a live value.
    pub fn get(&self, key: &[u8]) -> Option<&Entry> {
        self.map.get(key)
    }

    /// Iterate entries (including tombstones) in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], &Entry)> {
        self.map.iter().map(|(k, v)| (k.as_slice(), v))
    }

    /// Iterate entries with keys in `[start, end)` in key order.
    pub fn range<'a>(
        &'a self,
        start: &[u8],
        end: Option<&[u8]>,
    ) -> impl Iterator<Item = (&'a [u8], &'a Entry)> + 'a {
        let lower = Bound::Included(start.to_vec());
        let upper = match end {
            Some(e) => Bound::Excluded(e.to_vec()),
            None => Bound::Unbounded,
        };
        self.map
            .range((lower, upper))
            .map(|(k, v)| (k.as_slice(), v))
    }

    /// Number of buffered entries (tombstones included).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True iff no entries are buffered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate memory footprint in bytes, used for flush triggering.
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// Drain all entries in key order, leaving the memtable empty.
    pub fn drain_sorted(&mut self) -> Vec<(Vec<u8>, Entry)> {
        self.approx_bytes = 0;
        std::mem::take(&mut self.map).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_overwrite() {
        let mut m = MemTable::new();
        m.put(b"a", b"1");
        m.put(b"a", b"2");
        assert_eq!(m.get(b"a"), Some(&Some(b"2".to_vec())));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn tombstone_is_visible() {
        let mut m = MemTable::new();
        m.put(b"a", b"1");
        m.delete(b"a");
        assert_eq!(m.get(b"a"), Some(&None));
        assert_eq!(m.get(b"b"), None);
    }

    #[test]
    fn iteration_is_sorted() {
        let mut m = MemTable::new();
        m.put(b"c", b"3");
        m.put(b"a", b"1");
        m.put(b"b", b"2");
        let keys: Vec<_> = m.iter().map(|(k, _)| k.to_vec()).collect();
        assert_eq!(keys, vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]);
    }

    #[test]
    fn range_bounds() {
        let mut m = MemTable::new();
        for k in [b"a", b"b", b"c", b"d"] {
            m.put(k, b"v");
        }
        let keys: Vec<_> = m.range(b"b", Some(b"d")).map(|(k, _)| k.to_vec()).collect();
        assert_eq!(keys, vec![b"b".to_vec(), b"c".to_vec()]);
        let open: Vec<_> = m.range(b"c", None).map(|(k, _)| k.to_vec()).collect();
        assert_eq!(open, vec![b"c".to_vec(), b"d".to_vec()]);
    }

    #[test]
    fn size_accounting_grows_and_resets() {
        let mut m = MemTable::new();
        assert_eq!(m.approx_bytes(), 0);
        m.put(b"key", &[0u8; 100]);
        assert!(m.approx_bytes() >= 100);
        let drained = m.drain_sorted();
        assert_eq!(drained.len(), 1);
        assert_eq!(m.approx_bytes(), 0);
        assert!(m.is_empty());
    }

    #[test]
    fn drain_is_sorted() {
        let mut m = MemTable::new();
        m.put(b"z", b"1");
        m.delete(b"a");
        let drained = m.drain_sorted();
        assert_eq!(drained[0], (b"a".to_vec(), None));
        assert_eq!(drained[1], (b"z".to_vec(), Some(b"1".to_vec())));
    }
}
