//! Per-column-family tuning and the compaction-filter seam.
//!
//! RocksDB deployments tune each column family for its workload instead
//! of applying one global policy (qdrant's per-CF options wrapper), and
//! expire dead state by *dropping it during compaction* instead of
//! issuing point deletes (the Solana blockstore `OldestSlot` pattern):
//! a delete is a write — it costs a WAL frame, memtable space, and a
//! tombstone that lives until the next merge — while a compaction-time
//! drop is free, because the merge was rewriting the entry anyway. This
//! module gives `railgun-store` both halves:
//!
//! * [`CfOptions`] — per-CF memtable budget, compaction trigger, bloom
//!   density, and an optional [`CompactionFilter`], with profiles tuned
//!   for Railgun's three CF shapes ([`CfOptions::wide_state`],
//!   [`CfOptions::aux_sketch`], [`CfOptions::meta`]);
//! * [`CompactionFilter`] — the seam a full-CF merge consults for every
//!   surviving live entry;
//! * [`WriteBufferBudget`] — a process-wide memtable cap shared across
//!   [`crate::Db`] instances: when the total crosses the cap, the
//!   observing database flushes its largest memtable.
//!
//! ## Filter contract
//!
//! A filter decides the fate of **live entries during a full-CF
//! compaction** — never of memtable or WAL contents. That placement is
//! what keeps it crash-consistent for free: the merged output SSTable
//! becomes visible only through the atomic manifest swap, so a crash at
//! any instant leaves either the unfiltered inputs or the filtered
//! output, never a third state, and recovery needs no new logic.
//! For the same reason the filter must be:
//!
//! * **pure** — the verdict for a `(key, value)` pair depends only on the
//!   pair and the filter's *current horizon*, not on time-of-call or I/O;
//! * **monotonic** — once a horizon admits discarding a key, every later
//!   horizon must too. A key dropped from the SSTables may still surface
//!   from the memtable/WAL until the next flush + compaction; monotonic
//!   horizons make that re-appearance converge to "gone" instead of
//!   flickering.
//!
//! Entries the filter discards simply do not reach the output table —
//! readers may legally observe them until the compaction lands, so
//! filters are for state the engine *already* treats as dead (expired
//! window buckets, unregistered-query leaves), not for user-visible
//! deletion.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Verdict of a [`CompactionFilter`] for one live entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterDecision {
    /// Copy the entry into the compacted output.
    Keep,
    /// Drop the entry — it does not reach the output SSTable.
    Discard,
}

/// Decides, during a full-CF compaction, which live entries survive into
/// the merged output (see the [module docs](self) for the purity and
/// monotonicity contract). Tombstones and shadowed versions are already
/// dropped before the filter runs; it only ever sees the newest live
/// version of each key.
pub trait CompactionFilter: Send + Sync {
    /// Short name for logs/diagnostics (e.g. `"state-horizon"`).
    fn name(&self) -> &str;
    /// Fate of the live entry `(key, value)`.
    fn filter(&self, key: &[u8], value: &[u8]) -> FilterDecision;
}

impl fmt::Debug for dyn CompactionFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CompactionFilter({})", self.name())
    }
}

/// Tuning for one column family. Attach by name via
/// [`crate::DbOptions::cf_options`] (applies at open and to later
/// [`crate::Db::create_cf`] calls) or explicitly via
/// [`crate::Db::create_cf_with`].
#[derive(Clone)]
pub struct CfOptions {
    /// Flush this CF's memtable once its approximate size exceeds this.
    pub memtable_budget_bytes: usize,
    /// Compact once the CF accumulates this many SSTables.
    pub compaction_trigger: usize,
    /// Bloom filter density for this CF's SSTables.
    pub bloom_bits_per_key: usize,
    /// Compaction filter consulted for every live entry during merges.
    pub filter: Option<Arc<dyn CompactionFilter>>,
}

impl fmt::Debug for CfOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CfOptions")
            .field("memtable_budget_bytes", &self.memtable_budget_bytes)
            .field("compaction_trigger", &self.compaction_trigger)
            .field("bloom_bits_per_key", &self.bloom_bits_per_key)
            .field("filter", &self.filter.as_ref().map(|flt| flt.name().to_owned()))
            .finish()
    }
}

impl Default for CfOptions {
    fn default() -> Self {
        CfOptions {
            memtable_budget_bytes: 4 << 20,
            compaction_trigger: 4,
            bloom_bits_per_key: 10,
            filter: None,
        }
    }
}

impl CfOptions {
    /// Profile for the wide per-entity aggregation-state CF: the write
    /// stream is large and key-diverse, so it gets the big memtable (few,
    /// large SSTables) and a moderate trigger — compactions are where
    /// expired window buckets are reclaimed, so they must not be starved.
    pub fn wide_state() -> Self {
        CfOptions {
            memtable_budget_bytes: 4 << 20,
            compaction_trigger: 4,
            bloom_bits_per_key: 10,
            filter: None,
        }
    }

    /// Profile for the aux/sketch CF (`countDistinct` per-value counters
    /// and serialized sketch blobs): point-lookup heavy, so denser blooms;
    /// smaller memtable so aux state cannot crowd out the state CF; a
    /// higher trigger because its SSTables are small and merge cheaply.
    pub fn aux_sketch() -> Self {
        CfOptions {
            memtable_budget_bytes: 1 << 20,
            compaction_trigger: 6,
            bloom_bits_per_key: 12,
            filter: None,
        }
    }

    /// Profile for tiny metadata CFs (horizons, dead-leaf markers): a
    /// handful of keys, rewritten rarely — flush small and compact
    /// eagerly so the CF stays a single table.
    pub fn meta() -> Self {
        CfOptions {
            memtable_budget_bytes: 64 << 10,
            compaction_trigger: 2,
            bloom_bits_per_key: 8,
            filter: None,
        }
    }

    /// This profile with `filter` installed.
    pub fn with_filter(mut self, filter: Arc<dyn CompactionFilter>) -> Self {
        self.filter = Some(filter);
        self
    }
}

/// A process-wide memtable cap shared by any number of [`crate::Db`]
/// instances (one per task processor on a node).
///
/// Every database reports its total memtable footprint after each write
/// and flush; when the shared total crosses `cap`, the database that
/// observed the crossing flushes its own largest memtable — the cheapest
/// local action that frees the most of the shared budget (RocksDB's
/// `write_buffer_manager` behaves the same way). Accounting uses relaxed
/// atomics: the cap is a resource bound, not a synchronization point, and
/// a transiently stale total only shifts *which* write triggers the
/// flush.
#[derive(Debug)]
pub struct WriteBufferBudget {
    cap_bytes: usize,
    used: AtomicUsize,
}

impl WriteBufferBudget {
    /// A budget capping the process-wide memtable total at `cap_bytes`.
    pub fn new(cap_bytes: usize) -> Arc<Self> {
        Arc::new(WriteBufferBudget {
            cap_bytes,
            used: AtomicUsize::new(0),
        })
    }

    /// The configured cap.
    pub fn cap_bytes(&self) -> usize {
        self.cap_bytes
    }

    /// Current process-wide total of reported memtable bytes.
    pub fn used_bytes(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    /// True iff the reported total exceeds the cap.
    pub fn over(&self) -> bool {
        self.used_bytes() > self.cap_bytes
    }

    /// Replace a database's previous contribution (`old`) with `new`,
    /// returning `new` for the caller to remember.
    pub(crate) fn report(&self, old: usize, new: usize) -> usize {
        if new >= old {
            self.used.fetch_add(new - old, Ordering::Relaxed);
        } else {
            self.used.fetch_sub(old - new, Ordering::Relaxed);
        }
        new
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_tracks_contributions() {
        let b = WriteBufferBudget::new(1000);
        let mut mine = 0;
        mine = b.report(mine, 400);
        assert_eq!(b.used_bytes(), 400);
        assert!(!b.over());
        mine = b.report(mine, 1200);
        assert_eq!(b.used_bytes(), 1200);
        assert!(b.over());
        b.report(mine, 0);
        assert_eq!(b.used_bytes(), 0);
    }

    #[test]
    fn budget_is_shared_across_reporters() {
        let b = WriteBufferBudget::new(1000);
        let a = b.report(0, 600);
        let c = b.report(0, 600);
        assert!(b.over());
        b.report(a, 0);
        assert!(!b.over());
        b.report(c, 0);
        assert_eq!(b.used_bytes(), 0);
    }

    #[test]
    fn profiles_are_distinct_and_debuggable() {
        let w = CfOptions::wide_state();
        let x = CfOptions::aux_sketch();
        let m = CfOptions::meta();
        assert!(w.memtable_budget_bytes > x.memtable_budget_bytes);
        assert!(x.memtable_budget_bytes > m.memtable_budget_bytes);
        assert!(x.bloom_bits_per_key > w.bloom_bits_per_key);
        struct Nop;
        impl CompactionFilter for Nop {
            fn name(&self) -> &str {
                "nop"
            }
            fn filter(&self, _: &[u8], _: &[u8]) -> FilterDecision {
                FilterDecision::Keep
            }
        }
        let dbg = format!("{:?}", w.with_filter(Arc::new(Nop)));
        assert!(dbg.contains("nop"), "{dbg}");
    }
}
