//! Write-ahead log.
//!
//! Every write to the [`crate::Db`] is appended to a shared WAL before it
//! touches the memtable, so a crash loses nothing that was acknowledged.
//! Records are framed as
//!
//! ```text
//! [u32 LE payload length][u32 LE crc32c(payload)][payload]
//! payload := u32 LE column family | u8 op (1=put, 2=delete)
//!          | varint klen | key | (varint vlen | value)?
//! ```
//!
//! Replay stops at the first truncated or corrupt frame — exactly the
//! torn-write-at-crash behaviour an LSM recovery expects. The WAL is
//! truncated after a successful flush of all memtables (its contents are
//! then fully covered by SSTables).

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut};
use railgun_types::encode::{crc32c, get_uvarint, put_uvarint};
use railgun_types::Result;

/// One logical WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    Put {
        cf: u32,
        key: Vec<u8>,
        value: Vec<u8>,
    },
    Delete {
        cf: u32,
        key: Vec<u8>,
    },
}

const OP_PUT: u8 = 1;
const OP_DELETE: u8 = 2;

/// Append-only writer half of the WAL.
pub struct Wal {
    path: PathBuf,
    out: BufWriter<File>,
    /// Sync to disk on every append (durable but slow) or rely on flush.
    sync_each_write: bool,
    appended_bytes: u64,
    /// Reusable frame-encoding buffer (hot path).
    scratch: Vec<u8>,
}

impl Wal {
    /// Open (creating or appending to) the WAL at `path`.
    pub fn open(path: &Path, sync_each_write: bool) -> Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let appended_bytes = file.metadata()?.len();
        Ok(Wal {
            path: path.to_path_buf(),
            out: BufWriter::new(file),
            sync_each_write,
            appended_bytes,
            scratch: Vec::with_capacity(128),
        })
    }

    /// Append one record.
    pub fn append(&mut self, rec: &WalRecord) -> Result<()> {
        match rec {
            WalRecord::Put { cf, key, value } => self.append_put(*cf, key, value),
            WalRecord::Delete { cf, key } => self.append_delete(*cf, key),
        }
    }

    /// Append a put without constructing a [`WalRecord`] (hot path).
    pub fn append_put(&mut self, cf: u32, key: &[u8], value: &[u8]) -> Result<()> {
        self.scratch.clear();
        self.scratch.put_u32_le(cf);
        self.scratch.put_u8(OP_PUT);
        put_uvarint(&mut self.scratch, key.len() as u64);
        self.scratch.put_slice(key);
        put_uvarint(&mut self.scratch, value.len() as u64);
        self.scratch.put_slice(value);
        self.write_frame()
    }

    /// Append a delete without constructing a [`WalRecord`] (hot path).
    pub fn append_delete(&mut self, cf: u32, key: &[u8]) -> Result<()> {
        self.scratch.clear();
        self.scratch.put_u32_le(cf);
        self.scratch.put_u8(OP_DELETE);
        put_uvarint(&mut self.scratch, key.len() as u64);
        self.scratch.put_slice(key);
        self.write_frame()
    }

    fn write_frame(&mut self) -> Result<()> {
        let crc = crc32c(&self.scratch);
        self.out.write_all(&(self.scratch.len() as u32).to_le_bytes())?;
        self.out.write_all(&crc.to_le_bytes())?;
        self.out.write_all(&self.scratch)?;
        self.appended_bytes += 8 + self.scratch.len() as u64;
        if self.sync_each_write {
            self.out.flush()?;
            self.out.get_ref().sync_data()?;
        }
        Ok(())
    }

    /// Flush buffered frames to the OS (and disk).
    pub fn sync(&mut self) -> Result<()> {
        self.out.flush()?;
        self.out.get_ref().sync_data()?;
        Ok(())
    }

    /// Bytes appended since the log was created/truncated.
    pub fn len_bytes(&self) -> u64 {
        self.appended_bytes
    }

    /// Truncate the log — called after all memtables were flushed to
    /// SSTables, making the WAL contents redundant.
    pub fn truncate(&mut self) -> Result<()> {
        self.out.flush()?;
        let file = OpenOptions::new()
            .write(true)
            .truncate(true)
            .open(&self.path)?;
        file.sync_all()?;
        self.out = BufWriter::new(OpenOptions::new().append(true).open(&self.path)?);
        self.appended_bytes = 0;
        Ok(())
    }

    /// Read every intact record from `path`, stopping silently at the first
    /// torn/corrupt frame (crash tail).
    pub fn replay(path: &Path) -> Result<Vec<WalRecord>> {
        let mut raw = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut raw)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        }
        let mut out = Vec::new();
        let mut cur = &raw[..];
        while cur.len() >= 8 {
            let len = u32::from_le_bytes(cur[0..4].try_into().expect("4b")) as usize;
            let crc = u32::from_le_bytes(cur[4..8].try_into().expect("4b"));
            if cur.len() < 8 + len {
                break; // torn tail
            }
            let payload = &cur[8..8 + len];
            if crc32c(payload) != crc {
                break; // corrupt tail
            }
            match Self::decode_payload(payload) {
                Some(rec) => out.push(rec),
                None => break,
            }
            cur = &cur[8 + len..];
        }
        Ok(out)
    }

    fn decode_payload(mut p: &[u8]) -> Option<WalRecord> {
        if p.len() < 5 {
            return None;
        }
        let cf = p.get_u32_le();
        let op = p.get_u8();
        let klen = get_uvarint(&mut p).ok()? as usize;
        if p.remaining() < klen {
            return None;
        }
        let key = p[..klen].to_vec();
        p.advance(klen);
        match op {
            OP_PUT => {
                let vlen = get_uvarint(&mut p).ok()? as usize;
                if p.remaining() < vlen {
                    return None;
                }
                let value = p[..vlen].to_vec();
                Some(WalRecord::Put { cf, key, value })
            }
            OP_DELETE => Some(WalRecord::Delete { cf, key }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wal_path(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("railgun-wal-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join(name)
    }

    #[test]
    fn append_and_replay() {
        let path = wal_path("basic.wal");
        std::fs::remove_file(&path).ok();
        let recs = vec![
            WalRecord::Put {
                cf: 0,
                key: b"a".to_vec(),
                value: b"1".to_vec(),
            },
            WalRecord::Delete {
                cf: 2,
                key: b"b".to_vec(),
            },
            WalRecord::Put {
                cf: 1,
                key: vec![],
                value: vec![0u8; 1000],
            },
        ];
        {
            let mut w = Wal::open(&path, false).unwrap();
            for r in &recs {
                w.append(r).unwrap();
            }
            w.sync().unwrap();
        }
        assert_eq!(Wal::replay(&path).unwrap(), recs);
    }

    #[test]
    fn replay_missing_file_is_empty() {
        let path = wal_path("never-created.wal");
        std::fs::remove_file(&path).ok();
        assert!(Wal::replay(&path).unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_dropped() {
        let path = wal_path("torn.wal");
        std::fs::remove_file(&path).ok();
        {
            let mut w = Wal::open(&path, false).unwrap();
            for i in 0..5u8 {
                w.append(&WalRecord::Put {
                    cf: 0,
                    key: vec![i],
                    value: vec![i; 10],
                })
                .unwrap();
            }
            w.sync().unwrap();
        }
        // Chop off the last 6 bytes — simulates a crash mid-frame.
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 6]).unwrap();
        let recs = Wal::replay(&path).unwrap();
        assert_eq!(recs.len(), 4);
    }

    #[test]
    fn corrupt_tail_is_dropped() {
        let path = wal_path("corrupt.wal");
        std::fs::remove_file(&path).ok();
        {
            let mut w = Wal::open(&path, false).unwrap();
            for i in 0..3u8 {
                w.append(&WalRecord::Put {
                    cf: 0,
                    key: vec![i],
                    value: vec![i],
                })
                .unwrap();
            }
            w.sync().unwrap();
        }
        let mut raw = std::fs::read(&path).unwrap();
        let n = raw.len();
        raw[n - 1] ^= 0xff; // corrupt the last record's payload
        std::fs::write(&path, &raw).unwrap();
        assert_eq!(Wal::replay(&path).unwrap().len(), 2);
    }

    #[test]
    fn truncate_resets_log() {
        let path = wal_path("trunc.wal");
        std::fs::remove_file(&path).ok();
        let mut w = Wal::open(&path, false).unwrap();
        w.append(&WalRecord::Delete {
            cf: 0,
            key: b"x".to_vec(),
        })
        .unwrap();
        w.truncate().unwrap();
        assert_eq!(w.len_bytes(), 0);
        w.append(&WalRecord::Put {
            cf: 0,
            key: b"y".to_vec(),
            value: b"2".to_vec(),
        })
        .unwrap();
        w.sync().unwrap();
        let recs = Wal::replay(&path).unwrap();
        assert_eq!(recs.len(), 1);
        assert!(matches!(&recs[0], WalRecord::Put { key, .. } if key == b"y"));
    }

    #[test]
    fn reopen_appends_after_existing_records() {
        let path = wal_path("reopen.wal");
        std::fs::remove_file(&path).ok();
        {
            let mut w = Wal::open(&path, true).unwrap();
            w.append(&WalRecord::Put {
                cf: 0,
                key: b"a".to_vec(),
                value: b"1".to_vec(),
            })
            .unwrap();
        }
        {
            let mut w = Wal::open(&path, true).unwrap();
            assert!(w.len_bytes() > 0);
            w.append(&WalRecord::Put {
                cf: 0,
                key: b"b".to_vec(),
                value: b"2".to_vec(),
            })
            .unwrap();
        }
        assert_eq!(Wal::replay(&path).unwrap().len(), 2);
    }
}
