//! Write-ahead log.
//!
//! Every write to the [`crate::Db`] is appended to a shared WAL before it
//! touches the memtable, so a crash loses nothing that was acknowledged.
//! Records are framed as
//!
//! ```text
//! [u32 LE payload length][u32 LE crc32c(payload)][payload]
//! payload := u32 LE column family | u8 op (1=put, 2=delete)
//!          | varint klen | key | (varint vlen | value)?
//! ```
//!
//! ## Recovery modes
//!
//! What happens when the tail of the log is torn or corrupt is a policy
//! choice ([`WalRecoveryMode`], selected via
//! [`crate::DbOptions::wal_recovery`]):
//!
//! * [`WalRecoveryMode::TolerateTornTail`] (default) — replay stops at
//!   the first truncated or corrupt frame, **and the file is truncated to
//!   the valid prefix before any new append is accepted**. Cutting the
//!   tail eagerly matters: appending after garbage would leave every
//!   record written from then on unreachable (replay still stops at the
//!   old torn frame), silently losing acknowledged writes on the *next*
//!   crash. The number of bytes cut is reported in
//!   [`WalRecovery::truncated_bytes`] and surfaces in the recovery
//!   counters.
//! * [`WalRecoveryMode::AbsoluteConsistency`] — any trailing garbage is
//!   an error. For state that is reconstructible from upstream (replay
//!   the topic), silent truncation may hide a disk problem; this mode
//!   refuses to guess.
//!
//! The WAL is truncated after a successful flush of all memtables (its
//! contents are then fully covered by SSTables). A *partial* flush (only
//! some column families, see per-CF budgets in [`crate::CfOptions`])
//! instead **rewrites** the log atomically with just the surviving
//! memtables' records ([`Wal::rewrite`]): write a sibling `*.tmp`, fsync,
//! rename over the log, fsync the directory. A crash anywhere leaves
//! either the old log (replay is idempotent over already-flushed data) or
//! the new one — never a torn mix.
//!
//! All file I/O goes through the [`StoreFs`] seam so crash behaviour is
//! testable ([`crate::vfs`]).

use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::{Buf, BufMut};
use railgun_types::encode::{crc32c, get_uvarint, put_uvarint};
use railgun_types::{RailgunError, Result};

use crate::vfs::{FsFile, RealFs, StoreFs};

/// One logical WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    Put {
        cf: u32,
        key: Vec<u8>,
        value: Vec<u8>,
    },
    Delete {
        cf: u32,
        key: Vec<u8>,
    },
}

const OP_PUT: u8 = 1;
const OP_DELETE: u8 = 2;

/// Policy for a WAL whose tail is torn or corrupt at open (see the
/// [module docs](self)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum WalRecoveryMode {
    /// Truncate the corrupt tail and continue — the crash-at-any-moment
    /// default of an LSM whose WAL frames are CRC-checked.
    #[default]
    TolerateTornTail,
    /// Error on any corruption instead of silently truncating.
    AbsoluteConsistency,
}

/// Outcome of scanning (and possibly repairing) a WAL at open.
#[derive(Debug, Clone, Default)]
pub struct WalRecovery {
    /// Every intact record, in append order.
    pub records: Vec<WalRecord>,
    /// Bytes of torn/corrupt tail cut from the file (0 when clean).
    pub truncated_bytes: u64,
    /// Length of the valid prefix the log was opened at.
    pub valid_bytes: u64,
}

/// Append-only writer half of the WAL.
pub struct Wal {
    fs: Arc<dyn StoreFs>,
    path: PathBuf,
    out: BufWriter<Box<dyn FsFile>>,
    /// Sync to disk on every append (durable but slow) or rely on flush.
    sync_each_write: bool,
    appended_bytes: u64,
    /// Reusable frame-encoding buffer (hot path).
    scratch: Vec<u8>,
}

impl Wal {
    /// Open (creating or appending to) the WAL at `path`, recovering its
    /// contents in one scan.
    ///
    /// Under [`WalRecoveryMode::TolerateTornTail`] a torn/corrupt tail is
    /// cut from the file *before* the append handle is opened, so new
    /// records land directly after the valid prefix and stay reachable at
    /// the next replay. Under [`WalRecoveryMode::AbsoluteConsistency`]
    /// any tail garbage fails the open with
    /// [`RailgunError::Corruption`].
    pub fn open(
        fs: Arc<dyn StoreFs>,
        path: &Path,
        sync_each_write: bool,
        mode: WalRecoveryMode,
    ) -> Result<(Self, WalRecovery)> {
        let recovery = Self::scan(fs.as_ref(), path, mode)?;
        if recovery.truncated_bytes > 0 {
            // TolerateTornTail (AbsoluteConsistency errored in scan):
            // cut the garbage so appends extend the *valid* prefix.
            fs.truncate(path, recovery.valid_bytes)?;
        }
        let out = BufWriter::new(fs.open_append(path)?);
        Ok((
            Wal {
                fs,
                path: path.to_path_buf(),
                out,
                sync_each_write,
                appended_bytes: recovery.valid_bytes,
                scratch: Vec::with_capacity(128),
            },
            recovery,
        ))
    }

    /// Append one record.
    pub fn append(&mut self, rec: &WalRecord) -> Result<()> {
        match rec {
            WalRecord::Put { cf, key, value } => self.append_put(*cf, key, value),
            WalRecord::Delete { cf, key } => self.append_delete(*cf, key),
        }
    }

    /// Append a put without constructing a [`WalRecord`] (hot path).
    pub fn append_put(&mut self, cf: u32, key: &[u8], value: &[u8]) -> Result<()> {
        self.scratch.clear();
        self.scratch.put_u32_le(cf);
        self.scratch.put_u8(OP_PUT);
        put_uvarint(&mut self.scratch, key.len() as u64);
        self.scratch.put_slice(key);
        put_uvarint(&mut self.scratch, value.len() as u64);
        self.scratch.put_slice(value);
        self.write_frame()
    }

    /// Append a delete without constructing a [`WalRecord`] (hot path).
    pub fn append_delete(&mut self, cf: u32, key: &[u8]) -> Result<()> {
        self.scratch.clear();
        self.scratch.put_u32_le(cf);
        self.scratch.put_u8(OP_DELETE);
        put_uvarint(&mut self.scratch, key.len() as u64);
        self.scratch.put_slice(key);
        self.write_frame()
    }

    fn write_frame(&mut self) -> Result<()> {
        let crc = crc32c(&self.scratch);
        self.out.write_all(&(self.scratch.len() as u32).to_le_bytes())?;
        self.out.write_all(&crc.to_le_bytes())?;
        self.out.write_all(&self.scratch)?;
        self.appended_bytes += 8 + self.scratch.len() as u64;
        if self.sync_each_write {
            self.out.flush()?;
            self.out.get_mut().sync_data()?;
        }
        Ok(())
    }

    /// Flush buffered frames to the OS (and disk).
    pub fn sync(&mut self) -> Result<()> {
        self.out.flush()?;
        self.out.get_mut().sync_data()?;
        Ok(())
    }

    /// Bytes appended since the log was created/truncated.
    pub fn len_bytes(&self) -> u64 {
        self.appended_bytes
    }

    /// Truncate the log — called after all memtables were flushed to
    /// SSTables, making the WAL contents redundant.
    pub fn truncate(&mut self) -> Result<()> {
        self.out.flush()?;
        self.fs.truncate(&self.path, 0)?;
        self.out = BufWriter::new(self.fs.open_append(&self.path)?);
        self.appended_bytes = 0;
        Ok(())
    }

    /// Atomically replace the log's contents with `records` (`cf`, key,
    /// `Some(value)` = put / `None` = delete) — the partial-flush path:
    /// after flushing a *subset* of the memtables, the log must keep
    /// covering the column families that did not flush, so it is rebuilt
    /// from their surviving entries instead of being truncated.
    ///
    /// Crash safety: the new log is written to a sibling `*.tmp` and
    /// fsynced before an atomic rename over the live log, followed by a
    /// directory fsync. A crash before the rename leaves the old log
    /// (whose extra records replay idempotently over the flushed
    /// SSTables); after it, the new one. The open-time sweep removes a
    /// stale `*.tmp` either way.
    pub fn rewrite<'a>(
        &mut self,
        records: impl IntoIterator<Item = (u32, &'a [u8], Option<&'a [u8]>)>,
    ) -> Result<()> {
        self.out.flush()?;
        let file_name = self
            .path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "wal.log".to_owned());
        let tmp = self.path.with_file_name(format!("{file_name}.tmp"));
        let mut bytes: u64 = 0;
        {
            let mut out = BufWriter::new(self.fs.create(&tmp)?);
            for (cf, key, value) in records {
                self.scratch.clear();
                self.scratch.put_u32_le(cf);
                match value {
                    Some(v) => {
                        self.scratch.put_u8(OP_PUT);
                        put_uvarint(&mut self.scratch, key.len() as u64);
                        self.scratch.put_slice(key);
                        put_uvarint(&mut self.scratch, v.len() as u64);
                        self.scratch.put_slice(v);
                    }
                    None => {
                        self.scratch.put_u8(OP_DELETE);
                        put_uvarint(&mut self.scratch, key.len() as u64);
                        self.scratch.put_slice(key);
                    }
                }
                let crc = crc32c(&self.scratch);
                out.write_all(&(self.scratch.len() as u32).to_le_bytes())?;
                out.write_all(&crc.to_le_bytes())?;
                out.write_all(&self.scratch)?;
                bytes += 8 + self.scratch.len() as u64;
            }
            out.flush()?;
            out.get_mut().sync_all()?;
        }
        self.fs.rename(&tmp, &self.path)?;
        if let Some(parent) = self.path.parent() {
            self.fs.sync_dir(parent)?;
        }
        self.out = BufWriter::new(self.fs.open_append(&self.path)?);
        self.appended_bytes = bytes;
        Ok(())
    }

    /// Scan `path` without modifying it: intact records, the length of
    /// the valid prefix, and how many trailing bytes are garbage.
    ///
    /// Under [`WalRecoveryMode::AbsoluteConsistency`], tail garbage is a
    /// [`RailgunError::Corruption`] instead of a count.
    pub fn scan(fs: &dyn StoreFs, path: &Path, mode: WalRecoveryMode) -> Result<WalRecovery> {
        if !fs.exists(path) {
            return Ok(WalRecovery::default());
        }
        let raw = fs.read(path)?;
        let mut out = Vec::new();
        let mut cur = &raw[..];
        let mut valid: u64 = 0;
        while cur.len() >= 8 {
            let len = u32::from_le_bytes(cur[0..4].try_into().expect("4b")) as usize;
            let crc = u32::from_le_bytes(cur[4..8].try_into().expect("4b"));
            if cur.len() < 8 + len {
                break; // torn tail
            }
            let payload = &cur[8..8 + len];
            if crc32c(payload) != crc {
                break; // corrupt tail
            }
            match Self::decode_payload(payload) {
                Some(rec) => out.push(rec),
                None => break, // CRC-valid but undecodable: treat as tail
            }
            cur = &cur[8 + len..];
            valid += 8 + len as u64;
        }
        let truncated = raw.len() as u64 - valid;
        if truncated > 0 && mode == WalRecoveryMode::AbsoluteConsistency {
            return Err(RailgunError::Corruption(format!(
                "wal has {truncated} byte(s) of torn/corrupt tail after {} intact record(s) \
                 (AbsoluteConsistency refuses to truncate)",
                out.len()
            )));
        }
        Ok(WalRecovery {
            records: out,
            truncated_bytes: truncated,
            valid_bytes: valid,
        })
    }

    /// Read every intact record from `path`, stopping silently at the
    /// first torn/corrupt frame (crash tail). Read-only convenience over
    /// [`Wal::scan`] with [`WalRecoveryMode::TolerateTornTail`].
    pub fn replay(path: &Path) -> Result<Vec<WalRecord>> {
        Ok(Self::scan(&RealFs, path, WalRecoveryMode::TolerateTornTail)?.records)
    }

    fn decode_payload(mut p: &[u8]) -> Option<WalRecord> {
        if p.len() < 5 {
            return None;
        }
        let cf = p.get_u32_le();
        let op = p.get_u8();
        let klen = get_uvarint(&mut p).ok()? as usize;
        if p.remaining() < klen {
            return None;
        }
        let key = p[..klen].to_vec();
        p.advance(klen);
        match op {
            OP_PUT => {
                let vlen = get_uvarint(&mut p).ok()? as usize;
                if p.remaining() < vlen {
                    return None;
                }
                let value = p[..vlen].to_vec();
                Some(WalRecord::Put { cf, key, value })
            }
            OP_DELETE => Some(WalRecord::Delete { cf, key }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wal_path(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("railgun-wal-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join(name)
    }

    fn open(path: &Path, sync: bool) -> (Wal, WalRecovery) {
        Wal::open(RealFs::shared(), path, sync, WalRecoveryMode::default()).unwrap()
    }

    #[test]
    fn append_and_replay() {
        let path = wal_path("basic.wal");
        std::fs::remove_file(&path).ok();
        let recs = vec![
            WalRecord::Put {
                cf: 0,
                key: b"a".to_vec(),
                value: b"1".to_vec(),
            },
            WalRecord::Delete {
                cf: 2,
                key: b"b".to_vec(),
            },
            WalRecord::Put {
                cf: 1,
                key: vec![],
                value: vec![0u8; 1000],
            },
        ];
        {
            let (mut w, _) = open(&path, false);
            for r in &recs {
                w.append(r).unwrap();
            }
            w.sync().unwrap();
        }
        assert_eq!(Wal::replay(&path).unwrap(), recs);
    }

    #[test]
    fn replay_missing_file_is_empty() {
        let path = wal_path("never-created.wal");
        std::fs::remove_file(&path).ok();
        assert!(Wal::replay(&path).unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_dropped() {
        let path = wal_path("torn.wal");
        std::fs::remove_file(&path).ok();
        {
            let (mut w, _) = open(&path, false);
            for i in 0..5u8 {
                w.append(&WalRecord::Put {
                    cf: 0,
                    key: vec![i],
                    value: vec![i; 10],
                })
                .unwrap();
            }
            w.sync().unwrap();
        }
        // Chop off the last 6 bytes — simulates a crash mid-frame.
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 6]).unwrap();
        let recs = Wal::replay(&path).unwrap();
        assert_eq!(recs.len(), 4);
    }

    #[test]
    fn corrupt_tail_is_dropped() {
        let path = wal_path("corrupt.wal");
        std::fs::remove_file(&path).ok();
        {
            let (mut w, _) = open(&path, false);
            for i in 0..3u8 {
                w.append(&WalRecord::Put {
                    cf: 0,
                    key: vec![i],
                    value: vec![i],
                })
                .unwrap();
            }
            w.sync().unwrap();
        }
        let mut raw = std::fs::read(&path).unwrap();
        let n = raw.len();
        raw[n - 1] ^= 0xff; // corrupt the last record's payload
        std::fs::write(&path, &raw).unwrap();
        assert_eq!(Wal::replay(&path).unwrap().len(), 2);
    }

    #[test]
    fn truncate_resets_log() {
        let path = wal_path("trunc.wal");
        std::fs::remove_file(&path).ok();
        let (mut w, _) = open(&path, false);
        w.append(&WalRecord::Delete {
            cf: 0,
            key: b"x".to_vec(),
        })
        .unwrap();
        w.truncate().unwrap();
        assert_eq!(w.len_bytes(), 0);
        w.append(&WalRecord::Put {
            cf: 0,
            key: b"y".to_vec(),
            value: b"2".to_vec(),
        })
        .unwrap();
        w.sync().unwrap();
        let recs = Wal::replay(&path).unwrap();
        assert_eq!(recs.len(), 1);
        assert!(matches!(&recs[0], WalRecord::Put { key, .. } if key == b"y"));
    }

    #[test]
    fn reopen_appends_after_existing_records() {
        let path = wal_path("reopen.wal");
        std::fs::remove_file(&path).ok();
        {
            let (mut w, rec) = open(&path, true);
            assert_eq!(rec.valid_bytes, 0);
            w.append(&WalRecord::Put {
                cf: 0,
                key: b"a".to_vec(),
                value: b"1".to_vec(),
            })
            .unwrap();
        }
        {
            let (mut w, rec) = open(&path, true);
            assert!(w.len_bytes() > 0);
            assert_eq!(rec.records.len(), 1);
            assert_eq!(rec.truncated_bytes, 0);
            w.append(&WalRecord::Put {
                cf: 0,
                key: b"b".to_vec(),
                value: b"2".to_vec(),
            })
            .unwrap();
        }
        assert_eq!(Wal::replay(&path).unwrap().len(), 2);
    }

    /// The torn-tail reopen hazard this PR fixes: records appended after
    /// a torn frame used to be unreachable (replay stops at the torn
    /// frame). Open now cuts the tail first, so post-reopen appends land
    /// on the valid prefix and survive replay.
    #[test]
    fn reopen_truncates_torn_tail_before_appending() {
        let path = wal_path("torn-reopen.wal");
        std::fs::remove_file(&path).ok();
        {
            let (mut w, _) = open(&path, false);
            for i in 0..4u8 {
                w.append(&WalRecord::Put {
                    cf: 0,
                    key: vec![i],
                    value: vec![i; 16],
                })
                .unwrap();
            }
            w.sync().unwrap();
        }
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 5]).unwrap(); // torn frame
        let torn_len = raw.len() as u64 - 5;
        {
            let (mut w, rec) = open(&path, false);
            assert_eq!(rec.records.len(), 3);
            assert!(rec.truncated_bytes > 0);
            assert_eq!(rec.valid_bytes + rec.truncated_bytes, torn_len);
            assert_eq!(w.len_bytes(), rec.valid_bytes);
            w.append(&WalRecord::Put {
                cf: 0,
                key: b"after".to_vec(),
                value: b"tear".to_vec(),
            })
            .unwrap();
            w.sync().unwrap();
        }
        let recs = Wal::replay(&path).unwrap();
        assert_eq!(recs.len(), 4, "post-tear append must be reachable");
        assert!(matches!(&recs[3], WalRecord::Put { key, .. } if key == b"after"));
    }

    #[test]
    fn absolute_consistency_refuses_torn_tail() {
        let path = wal_path("absolute.wal");
        std::fs::remove_file(&path).ok();
        {
            let (mut w, _) = open(&path, false);
            w.append(&WalRecord::Put {
                cf: 0,
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            })
            .unwrap();
            w.sync().unwrap();
        }
        let raw = std::fs::read(&path).unwrap();
        let mut cut = raw.clone();
        cut.truncate(raw.len() - 3);
        std::fs::write(&path, &cut).unwrap();
        let err = Wal::open(
            RealFs::shared(),
            &path,
            false,
            WalRecoveryMode::AbsoluteConsistency,
        )
        .map(drop)
        .unwrap_err();
        assert!(matches!(err, RailgunError::Corruption(_)));
        // The file was NOT modified by the failed open.
        assert_eq!(std::fs::read(&path).unwrap(), cut);
        // A clean log opens fine in absolute mode.
        std::fs::write(&path, &raw).unwrap();
        let (_, rec) = Wal::open(
            RealFs::shared(),
            &path,
            false,
            WalRecoveryMode::AbsoluteConsistency,
        )
        .unwrap();
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.truncated_bytes, 0);
    }
}
