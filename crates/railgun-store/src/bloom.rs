//! Bloom filters for SSTable point-read short-circuiting.
//!
//! Each SSTable carries one bloom filter over all of its keys. A negative
//! answer lets [`crate::Db::get`] skip the table entirely, which matters
//! when the LSM has several sorted runs — the same optimization RocksDB
//! relies on for the paper's read-modify-write aggregation pattern.
//!
//! Double hashing (Kirsch–Mitzenmacher) derives the `k` probe positions from
//! two 64-bit halves of a single 128-bit-ish hash, the standard construction
//! used by LevelDB/RocksDB.

use bytes::{Buf, BufMut};
use railgun_types::encode::{get_uvarint, put_uvarint};
use railgun_types::{RailgunError, Result};

/// A fixed-size bloom filter built over a batch of keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: u64,
    num_hashes: u32,
}

/// FNV-1a 64-bit, seeded; cheap and adequate for bloom probing.
#[inline]
fn fnv1a(seed: u64, data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl BloomFilter {
    /// Build a filter sized for `keys.len()` keys at `bits_per_key`.
    pub fn build<K: AsRef<[u8]>>(keys: &[K], bits_per_key: usize) -> Self {
        let n = keys.len().max(1);
        let num_bits = (n * bits_per_key).max(64) as u64;
        // k = ln2 * bits/key, clamped to a sane range.
        let num_hashes = ((bits_per_key as f64 * 0.69) as u32).clamp(1, 30);
        let mut filter = BloomFilter {
            bits: vec![0u64; num_bits.div_ceil(64) as usize],
            num_bits,
            num_hashes,
        };
        for k in keys {
            filter.insert(k.as_ref());
        }
        filter
    }

    fn insert(&mut self, key: &[u8]) {
        let h1 = fnv1a(0x51ed_270b, key);
        let h2 = fnv1a(0xb492_b66f, key) | 1; // odd stride
        for i in 0..u64::from(self.num_hashes) {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.num_bits;
            self.bits[(bit / 64) as usize] |= 1u64 << (bit % 64);
        }
    }

    /// True if `key` *may* be present; false means definitely absent.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let h1 = fnv1a(0x51ed_270b, key);
        let h2 = fnv1a(0xb492_b66f, key) | 1;
        for i in 0..u64::from(self.num_hashes) {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.num_bits;
            if self.bits[(bit / 64) as usize] & (1u64 << (bit % 64)) == 0 {
                return false;
            }
        }
        true
    }

    /// Serialize to `buf` (varint header + raw words).
    pub fn encode(&self, buf: &mut impl BufMut) {
        put_uvarint(buf, self.num_bits);
        put_uvarint(buf, u64::from(self.num_hashes));
        put_uvarint(buf, self.bits.len() as u64);
        for w in &self.bits {
            buf.put_u64_le(*w);
        }
    }

    /// Deserialize a filter written by [`BloomFilter::encode`].
    pub fn decode(buf: &mut impl Buf) -> Result<Self> {
        let num_bits = get_uvarint(buf)?;
        let num_hashes = get_uvarint(buf)? as u32;
        let words = get_uvarint(buf)? as usize;
        if num_bits == 0 || num_hashes == 0 || words != num_bits.div_ceil(64) as usize {
            return Err(RailgunError::Corruption("malformed bloom header".into()));
        }
        if buf.remaining() < words * 8 {
            return Err(RailgunError::Corruption("truncated bloom bits".into()));
        }
        let mut bits = Vec::with_capacity(words);
        for _ in 0..words {
            bits.push(buf.get_u64_le());
        }
        Ok(BloomFilter {
            bits,
            num_bits,
            num_hashes,
        })
    }

    /// Size of the bit array in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let keys: Vec<Vec<u8>> = (0..1000u32).map(|i| i.to_le_bytes().to_vec()).collect();
        let f = BloomFilter::build(&keys, 10);
        for k in &keys {
            assert!(f.may_contain(k));
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let keys: Vec<Vec<u8>> = (0..1000u32).map(|i| i.to_le_bytes().to_vec()).collect();
        let f = BloomFilter::build(&keys, 10);
        let fp = (1000..11_000u32)
            .filter(|i| f.may_contain(&i.to_le_bytes()))
            .count();
        // 10 bits/key should give ~1% FPR; allow generous 4%.
        assert!(fp < 400, "false positive rate too high: {fp}/10000");
    }

    #[test]
    fn empty_key_set_is_valid() {
        let f = BloomFilter::build::<&[u8]>(&[], 10);
        // May return either answer but must not panic.
        let _ = f.may_contain(b"anything");
    }

    #[test]
    fn encode_decode_roundtrip() {
        let keys: Vec<Vec<u8>> = (0..64u32).map(|i| format!("key{i}").into_bytes()).collect();
        let f = BloomFilter::build(&keys, 12);
        let mut buf = Vec::new();
        f.encode(&mut buf);
        let g = BloomFilter::decode(&mut &buf[..]).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn decode_rejects_truncation() {
        let f = BloomFilter::build(&[b"k".to_vec()], 10);
        let mut buf = Vec::new();
        f.encode(&mut buf);
        buf.truncate(buf.len() - 1);
        assert!(BloomFilter::decode(&mut &buf[..]).is_err());
    }
}
