//! Checkpoints: consistent on-disk snapshots of a database.
//!
//! The paper (§4.1.3) synchronizes state-store checkpoints with reservoir
//! checkpoints and notes they are cheap because the LSM persists data
//! continuously — a checkpoint only has to capture the (immutable) SSTables
//! and the manifest. We hard-link SSTables when the filesystem allows it
//! and fall back to copying, like RocksDB's checkpoint feature.

use std::fs;
use std::path::Path;

use railgun_types::{RailgunError, Result};

/// Snapshot `files` (relative names inside `src`) into `target`.
///
/// `target` must not already contain a checkpoint; it is created fresh.
/// Callers must ensure the files are immutable for the duration (the
/// [`crate::Db`] holds its lock and flushes first).
pub fn create(src: &Path, target: &Path, files: &[String]) -> Result<()> {
    if target.exists() && target.read_dir()?.next().is_some() {
        return Err(RailgunError::InvalidArgument(format!(
            "checkpoint target {} is not empty",
            target.display()
        )));
    }
    fs::create_dir_all(target)?;
    for name in files {
        let from = src.join(name);
        let to = target.join(name);
        // Hard links make checkpoints O(1) per file; immutability of SSTs
        // and atomic manifest replacement keep them safe.
        if fs::hard_link(&from, &to).is_err() {
            fs::copy(&from, &to)?;
        }
    }
    // An empty WAL marks the checkpoint as fully flushed.
    fs::File::create(target.join("wal.log"))?.sync_all()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn fresh(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("railgun-ckptmod-{}-{name}", std::process::id()));
        fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn copies_named_files() {
        let src = fresh("src");
        let dst = fresh("dst");
        fs::create_dir_all(&src).unwrap();
        fs::write(src.join("a.sst"), b"AAA").unwrap();
        fs::write(src.join("MANIFEST"), b"MMM").unwrap();
        fs::write(src.join("ignored.tmp"), b"TTT").unwrap();
        create(&src, &dst, &["a.sst".into(), "MANIFEST".into()]).unwrap();
        assert_eq!(fs::read(dst.join("a.sst")).unwrap(), b"AAA");
        assert_eq!(fs::read(dst.join("MANIFEST")).unwrap(), b"MMM");
        assert!(!dst.join("ignored.tmp").exists());
        assert!(dst.join("wal.log").exists());
    }

    #[test]
    fn refuses_nonempty_target() {
        let src = fresh("src2");
        let dst = fresh("dst2");
        fs::create_dir_all(&src).unwrap();
        fs::create_dir_all(&dst).unwrap();
        fs::write(dst.join("existing"), b"x").unwrap();
        assert!(create(&src, &dst, &[]).is_err());
    }

    #[test]
    fn empty_target_dir_is_ok() {
        let src = fresh("src3");
        let dst = fresh("dst3");
        fs::create_dir_all(&src).unwrap();
        fs::create_dir_all(&dst).unwrap(); // exists but empty
        create(&src, &dst, &[]).unwrap();
        assert!(dst.join("wal.log").exists());
    }
}
