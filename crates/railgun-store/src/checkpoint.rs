//! Checkpoints: consistent on-disk snapshots of a database.
//!
//! The paper (§4.1.3) synchronizes state-store checkpoints with reservoir
//! checkpoints and notes they are cheap because the LSM persists data
//! continuously — a checkpoint only has to capture the (immutable) SSTables
//! and the manifest. We hard-link SSTables when the filesystem allows it
//! and fall back to copying, like RocksDB's checkpoint feature.
//!
//! All I/O goes through the [`StoreFs`] seam, with crash points before
//! each file lands ([`crash_points::CHECKPOINT_MID_COPY`]) and before the
//! empty-WAL marker is created
//! ([`crash_points::CHECKPOINT_BEFORE_WAL_CREATE`]) — a partial
//! checkpoint must be detected as invalid by whoever tries to restore
//! from it, never silently opened.

use std::path::Path;

use railgun_types::{RailgunError, Result};

use crate::vfs::{crash_points, StoreFs};

/// Snapshot `files` (relative names inside `src`) into `target`.
///
/// `target` must not already contain a checkpoint; it is created fresh.
/// Callers must ensure the files are immutable for the duration (the
/// [`crate::Db`] holds its lock and flushes first). The target directory
/// is fsynced at the end so the checkpoint's entries survive a crash.
pub fn create(fs: &dyn StoreFs, src: &Path, target: &Path, files: &[String]) -> Result<()> {
    if fs.exists(target) && !fs.read_dir_files(target)?.is_empty() {
        return Err(RailgunError::InvalidArgument(format!(
            "checkpoint target {} is not empty",
            target.display()
        )));
    }
    fs.create_dir_all(target)?;
    for name in files {
        // Hit `k` freezes the image with `k - 1` files present: a
        // partial checkpoint, missing its manifest or some SSTs.
        fs.crash_point(crash_points::CHECKPOINT_MID_COPY)?;
        let from = src.join(name);
        let to = target.join(name);
        // Hard links make checkpoints O(1) per file; immutability of SSTs
        // and atomic manifest replacement keep them safe.
        fs.hard_link_or_copy(&from, &to)?;
    }
    fs.crash_point(crash_points::CHECKPOINT_BEFORE_WAL_CREATE)?;
    // An empty WAL marks the checkpoint as fully flushed.
    fs.create(&target.join("wal.log"))?.sync_all()?;
    fs.sync_dir(target)?;
    Ok(())
}

/// True iff `dir` contains a *complete* checkpoint.
///
/// Creation writes the empty `wal.log` marker last — after the manifest
/// and every SSTable, before the directory fsync — so its presence
/// implies all files landed. Restore paths must check this (and fall
/// back to full replay) instead of opening a partial image, which would
/// otherwise bootstrap as an empty database.
pub fn is_complete(fs: &dyn StoreFs, dir: &Path) -> bool {
    fs.exists(&dir.join("wal.log")) && fs.exists(&dir.join("MANIFEST"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::RealFs;
    use std::fs;
    use std::path::PathBuf;

    fn fresh(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("railgun-ckptmod-{}-{name}", std::process::id()));
        fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn copies_named_files() {
        let src = fresh("src");
        let dst = fresh("dst");
        fs::create_dir_all(&src).unwrap();
        fs::write(src.join("a.sst"), b"AAA").unwrap();
        fs::write(src.join("MANIFEST"), b"MMM").unwrap();
        fs::write(src.join("ignored.tmp"), b"TTT").unwrap();
        create(&RealFs, &src, &dst, &["a.sst".into(), "MANIFEST".into()]).unwrap();
        assert_eq!(fs::read(dst.join("a.sst")).unwrap(), b"AAA");
        assert_eq!(fs::read(dst.join("MANIFEST")).unwrap(), b"MMM");
        assert!(!dst.join("ignored.tmp").exists());
        assert!(dst.join("wal.log").exists());
    }

    #[test]
    fn refuses_nonempty_target() {
        let src = fresh("src2");
        let dst = fresh("dst2");
        fs::create_dir_all(&src).unwrap();
        fs::create_dir_all(&dst).unwrap();
        fs::write(dst.join("existing"), b"x").unwrap();
        assert!(create(&RealFs, &src, &dst, &[]).is_err());
    }

    #[test]
    fn empty_target_dir_is_ok() {
        let src = fresh("src3");
        let dst = fresh("dst3");
        fs::create_dir_all(&src).unwrap();
        fs::create_dir_all(&dst).unwrap(); // exists but empty
        create(&RealFs, &src, &dst, &[]).unwrap();
        assert!(dst.join("wal.log").exists());
    }
}
