//! The store's virtual filesystem — the seam every byte of durable state
//! passes through.
//!
//! The paper frames Railgun's requirements as *mission critical* (MAD,
//! §2): a crash that silently loses acknowledged state is a correctness
//! bug, not an operational inconvenience. But durability claims are only
//! as good as their tests, and `std::fs` cannot be made to fail on cue.
//! This module fixes that by routing all store I/O — WAL appends, SSTable
//! writes, manifest renames, checkpoint links, directory fsyncs — through
//! a [`StoreFs`] trait with two implementations:
//!
//! * [`RealFs`] — a thin passthrough to `std::fs`. The hot path (WAL
//!   appends) still writes into a `BufWriter`, so the only added cost is
//!   one virtual call per buffer flush: zero-cost in practice.
//! * [`FaultFs`] — deterministic, seed-driven fault injection over a real
//!   backing directory: torn writes (a prefix of the buffer lands, then
//!   the write fails), failed `sync_data`/`sync_all`, failed renames,
//!   failed directory fsyncs, and explicit crash-point hooks placed at
//!   the interesting sequencing moments of flush / compaction /
//!   checkpoint. Tripping **any** fault freezes the filesystem: every
//!   subsequent operation fails, so the backing directory is exactly the
//!   on-disk image a power cut at that moment would have left. Recovery
//!   is then exercised by reopening that image with [`RealFs`].
//!
//! The set of trip sites is the **crash-point registry**
//! ([`crash_points::ALL`]): the crash-torture harness ([`crate::torture`])
//! sweeps every entry and verifies no acknowledged write is lost.
//!
//! ## Error contract
//!
//! Injected failures carry the [`INJECTED_TAG`] marker in their message
//! ([`is_injected`] tests for it), so harnesses can tell a deliberate
//! crash from a real bug in the recovery path — the latter must always
//! fail the test.

use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;
use railgun_types::{RailgunError, Result};

/// A writable file handle produced by a [`StoreFs`].
///
/// Implementations are plain `Write` sinks plus the two fsync flavours;
/// callers that need buffering wrap the handle in a `BufWriter`.
pub trait FsFile: Write + Send {
    /// Flush file *data* to stable storage (`fdatasync`).
    fn sync_data(&mut self) -> Result<()>;
    /// Flush file data *and metadata* to stable storage (`fsync`).
    fn sync_all(&mut self) -> Result<()>;
}

/// The filesystem operations the store layer is allowed to use.
///
/// Everything [`crate::Db`] touches on disk goes through this trait (via
/// [`crate::DbOptions::fs`]), which is what makes its recovery claims
/// testable: swap in a [`FaultFs`] and every durability assumption can be
/// violated deterministically.
pub trait StoreFs: fmt::Debug + Send + Sync {
    /// Create `path` and all missing parents.
    fn create_dir_all(&self, path: &Path) -> Result<()>;
    /// Open `path` for appending, creating it if missing.
    fn open_append(&self, path: &Path) -> Result<Box<dyn FsFile>>;
    /// Create `path` for writing, truncating any existing file.
    fn create(&self, path: &Path) -> Result<Box<dyn FsFile>>;
    /// Read the entire contents of `path`.
    fn read(&self, path: &Path) -> Result<Vec<u8>>;
    /// Length of `path` in bytes.
    fn file_len(&self, path: &Path) -> Result<u64>;
    /// True iff `path` exists.
    fn exists(&self, path: &Path) -> bool;
    /// Truncate (or extend with zeros) `path` to exactly `len` bytes and
    /// sync it. Used to cut a torn WAL tail before accepting appends.
    fn truncate(&self, path: &Path, len: u64) -> Result<()>;
    /// Atomically rename `from` to `to` (same directory).
    fn rename(&self, from: &Path, to: &Path) -> Result<()>;
    /// Remove the file at `path`.
    fn remove_file(&self, path: &Path) -> Result<()>;
    /// Hard-link `from` to `to`, falling back to a copy when the
    /// filesystem refuses links (checkpoints, [`crate::checkpoint`]).
    fn hard_link_or_copy(&self, from: &Path, to: &Path) -> Result<()>;
    /// fsync the directory itself, making renames and newly created
    /// directory entries durable (a file fsync does **not** cover its
    /// directory entry).
    fn sync_dir(&self, path: &Path) -> Result<()>;
    /// Names of the *files* directly inside `path` (subdirectories are
    /// skipped — the store never recurses).
    fn read_dir_files(&self, path: &Path) -> Result<Vec<String>>;
    /// A named sequencing hook. [`RealFs`] returns `Ok(())` unconditionally;
    /// [`FaultFs`] trips a crash here when armed on `name`. Store code
    /// places these between the distinct durability steps of flush,
    /// compaction and checkpoint creation (see [`crash_points`]).
    fn crash_point(&self, name: &'static str) -> Result<()> {
        let _ = name;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// RealFs
// ---------------------------------------------------------------------------

/// The production [`StoreFs`]: a thin passthrough to `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealFs;

impl RealFs {
    /// A shared handle to the passthrough filesystem (what
    /// [`crate::DbOptions::default`] uses).
    pub fn shared() -> Arc<dyn StoreFs> {
        Arc::new(RealFs)
    }
}

struct RealFile(File);

impl Write for RealFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
}

impl FsFile for RealFile {
    fn sync_data(&mut self) -> Result<()> {
        self.0.sync_data()?;
        Ok(())
    }
    fn sync_all(&mut self) -> Result<()> {
        self.0.sync_all()?;
        Ok(())
    }
}

impl StoreFs for RealFs {
    fn create_dir_all(&self, path: &Path) -> Result<()> {
        std::fs::create_dir_all(path)?;
        Ok(())
    }

    fn open_append(&self, path: &Path) -> Result<Box<dyn FsFile>> {
        let f = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Box::new(RealFile(f)))
    }

    fn create(&self, path: &Path) -> Result<Box<dyn FsFile>> {
        Ok(Box::new(RealFile(File::create(path)?)))
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>> {
        let mut raw = Vec::new();
        File::open(path)?.read_to_end(&mut raw)?;
        Ok(raw)
    }

    fn file_len(&self, path: &Path) -> Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn truncate(&self, path: &Path, len: u64) -> Result<()> {
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(len)?;
        f.sync_all()?;
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        std::fs::rename(from, to)?;
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> Result<()> {
        std::fs::remove_file(path)?;
        Ok(())
    }

    fn hard_link_or_copy(&self, from: &Path, to: &Path) -> Result<()> {
        if std::fs::hard_link(from, to).is_err() {
            std::fs::copy(from, to)?;
        }
        Ok(())
    }

    fn sync_dir(&self, path: &Path) -> Result<()> {
        // Opening a directory read-only and fsyncing it is the POSIX way
        // to make its entries durable; on platforms where that fails the
        // rename durability guarantee degrades gracefully (macOS HFS+
        // semantics), so errors opening the dir are not fatal.
        match File::open(path) {
            Ok(d) => {
                d.sync_all()?;
                Ok(())
            }
            Err(_) => Ok(()),
        }
    }

    fn read_dir_files(&self, path: &Path) -> Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(path)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Crash-point registry
// ---------------------------------------------------------------------------

/// The registry of every site where [`FaultFs`] can freeze the on-disk
/// image. Two flavours:
///
/// * **operation points** (`*:write`, `*:sync`, `manifest:rename`, …) trip
///   inside the corresponding [`StoreFs`] / [`FsFile`] call — a `*:write`
///   trip additionally tears the write, landing only a seed-determined
///   prefix of the buffer;
/// * **hook points** (`flush:*`, `compact:*`, `checkpoint:*`) are explicit
///   [`StoreFs::crash_point`] calls placed *between* the durability steps
///   of a compound operation, freezing the image in its intermediate
///   state.
///
/// The crash-torture harness sweeps [`crash_points::ALL`]; adding a new
/// point here automatically enrolls it.
pub mod crash_points {
    /// Torn write to the WAL file (a prefix of the frame lands).
    pub const WAL_WRITE: &str = "wal:write";
    /// `sync_data` on the WAL fails after an append.
    pub const WAL_SYNC: &str = "wal:sync";
    /// WAL truncation (post-flush reset, or torn-tail cut at open) fails.
    pub const WAL_TRUNCATE: &str = "wal:truncate";
    /// Torn write to an SSTable under construction.
    pub const SST_WRITE: &str = "sst:write";
    /// `sync_all` on a finished SSTable fails.
    pub const SST_SYNC: &str = "sst:sync";
    /// Torn write to `MANIFEST.tmp`.
    pub const MANIFEST_WRITE: &str = "manifest:write";
    /// `sync_all` on `MANIFEST.tmp` fails.
    pub const MANIFEST_SYNC: &str = "manifest:sync";
    /// The atomic `MANIFEST.tmp` → `MANIFEST` rename fails.
    pub const MANIFEST_RENAME: &str = "manifest:rename";
    /// The directory fsync after a manifest rename / checkpoint fails.
    pub const DIR_SYNC: &str = "dir:sync";
    /// Flush: SSTables written and synced, manifest not yet updated.
    pub const FLUSH_BEFORE_MANIFEST: &str = "flush:before-manifest";
    /// Flush: manifest updated, WAL not yet truncated (replay overlaps
    /// flushed data; recovery must be idempotent).
    pub const FLUSH_BEFORE_WAL_TRUNCATE: &str = "flush:before-wal-truncate";
    /// Compaction: merged SSTable written, manifest still references the
    /// inputs.
    pub const COMPACT_BEFORE_MANIFEST: &str = "compact:before-manifest";
    /// Compaction: manifest updated, input SSTables not yet deleted (the
    /// orphan-quarantine path at next open).
    pub const COMPACT_BEFORE_REMOVE_OLD: &str = "compact:before-remove-old";
    /// Filtered compaction: the merged table omits filter-discarded
    /// entries but the manifest still references the unfiltered inputs —
    /// recovery must keep serving the filtered keys from the inputs.
    /// Fires only when the compaction actually dropped entries.
    pub const COMPACT_FILTERED_BEFORE_MANIFEST: &str = "compact:filtered-before-manifest";
    /// Filtered compaction: manifest swapped to the filtered output —
    /// the dropped keys must never resurrect, even with the input tables
    /// still on disk (quarantined at the next open). Fires only when the
    /// compaction actually dropped entries.
    pub const COMPACT_FILTERED_AFTER_MANIFEST: &str = "compact:filtered-after-manifest";
    /// Checkpoint: before each file is linked/copied into the target (hit
    /// `k` freezes with `k - 1` files present — a partial checkpoint).
    pub const CHECKPOINT_MID_COPY: &str = "checkpoint:mid-copy";
    /// Checkpoint: all files present, empty `wal.log` marker not yet
    /// created.
    pub const CHECKPOINT_BEFORE_WAL_CREATE: &str = "checkpoint:before-wal-create";

    /// Every registered crash point, in sweep order.
    pub const ALL: &[&str] = &[
        WAL_WRITE,
        WAL_SYNC,
        WAL_TRUNCATE,
        SST_WRITE,
        SST_SYNC,
        MANIFEST_WRITE,
        MANIFEST_SYNC,
        MANIFEST_RENAME,
        DIR_SYNC,
        FLUSH_BEFORE_MANIFEST,
        FLUSH_BEFORE_WAL_TRUNCATE,
        COMPACT_BEFORE_MANIFEST,
        COMPACT_FILTERED_BEFORE_MANIFEST,
        COMPACT_FILTERED_AFTER_MANIFEST,
        COMPACT_BEFORE_REMOVE_OLD,
        CHECKPOINT_MID_COPY,
        CHECKPOINT_BEFORE_WAL_CREATE,
    ];
}

/// Marker embedded in every injected failure's message; [`is_injected`]
/// tests for it.
pub const INJECTED_TAG: &str = "railgun-fault-injected";

/// True iff `err` was produced by [`FaultFs`] fault injection (as opposed
/// to a real storage failure, which a torture harness must treat as a
/// bug).
pub fn is_injected(err: &RailgunError) -> bool {
    match err {
        RailgunError::Io(e) => e.to_string().contains(INJECTED_TAG),
        RailgunError::Storage(m) => m.contains(INJECTED_TAG),
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// FaultFs
// ---------------------------------------------------------------------------

/// Where to freeze: trip on the `hit`-th time `point` is reached
/// (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// A name from [`crash_points`].
    pub point: &'static str,
    /// 1-based occurrence index of the point at which to trip.
    pub hit: u64,
}

#[derive(Debug)]
struct FaultState {
    rng: u64,
    armed: Option<CrashPlan>,
    hits: HashMap<&'static str, u64>,
    /// Set on trip: the image is frozen, every further op fails.
    crashed: bool,
}

impl FaultState {
    /// splitmix64 — tiny, seed-stable PRNG for torn-write prefix lengths.
    fn next_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Count a hit of `point`; returns `Err` if the image is frozen or
    /// this hit trips the armed plan.
    fn check(&mut self, point: &'static str) -> Result<()> {
        if self.crashed {
            return Err(frozen_error());
        }
        let n = self.hits.entry(point).or_insert(0);
        *n += 1;
        let n = *n;
        if self.armed == Some(CrashPlan { point, hit: n }) {
            self.crashed = true;
            return Err(trip_error(point, n));
        }
        Ok(())
    }

    /// Like [`FaultState::check`] but for a torn write: on trip, returns
    /// the number of bytes of the in-flight buffer that still land.
    fn check_write(&mut self, point: &'static str, buf_len: usize) -> std::result::Result<(), usize> {
        if self.crashed {
            return Err(usize::MAX); // sentinel: frozen, nothing lands
        }
        let n = self.hits.entry(point).or_insert(0);
        *n += 1;
        let n = *n;
        if self.armed == Some(CrashPlan { point, hit: n }) {
            self.crashed = true;
            // A torn write lands a strict prefix (possibly empty).
            let keep = if buf_len == 0 {
                0
            } else {
                (self.next_u64() as usize) % buf_len
            };
            return Err(keep);
        }
        Ok(())
    }
}

fn trip_error(point: &str, hit: u64) -> RailgunError {
    RailgunError::Storage(format!("{INJECTED_TAG}: crash at {point} (hit {hit})"))
}

fn frozen_error() -> RailgunError {
    RailgunError::Storage(format!("{INJECTED_TAG}: filesystem frozen by earlier crash"))
}

fn io_trip_error(point: &str) -> io::Error {
    io::Error::other(format!("{INJECTED_TAG}: crash at {point}"))
}

/// Deterministic fault-injecting [`StoreFs`] over a real backing
/// directory.
///
/// Arm it with a [`CrashPlan`] and run a workload: when the plan's crash
/// point is reached for the `hit`-th time, the operation fails (tearing
/// the write in flight for `*:write` points) and the filesystem
/// **freezes** — every later operation fails too, so the backing
/// directory is the exact on-disk image of a crash at that instant.
/// Reopen it with [`RealFs`] to exercise recovery. See [`crate::torture`]
/// for the harness that sweeps all of [`crash_points::ALL`].
#[derive(Debug, Clone)]
pub struct FaultFs {
    state: Arc<Mutex<FaultState>>,
}

impl FaultFs {
    /// A fault filesystem with the given PRNG seed and no armed crash.
    pub fn new(seed: u64) -> Self {
        FaultFs {
            state: Arc::new(Mutex::new(FaultState {
                rng: seed,
                armed: None,
                hits: HashMap::new(),
                crashed: false,
            })),
        }
    }

    /// Arm (or disarm with `None`) the crash plan.
    pub fn arm(&self, plan: Option<CrashPlan>) {
        self.state.lock().armed = plan;
    }

    /// True iff a fault has tripped and the image is frozen.
    pub fn crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// How many times `point` has been reached so far.
    pub fn hit_count(&self, point: &'static str) -> u64 {
        *self.state.lock().hits.get(point).unwrap_or(&0)
    }

    /// All (point, hits) pairs observed so far — a profiling run uses
    /// this to enumerate the sweep space.
    pub fn hit_profile(&self) -> Vec<(&'static str, u64)> {
        let st = self.state.lock();
        let mut v: Vec<_> = st.hits.iter().map(|(&k, &n)| (k, n)).collect();
        v.sort_unstable();
        v
    }

    fn check(&self, point: &'static str) -> Result<()> {
        self.state.lock().check(point)
    }

    fn frozen_guard(&self) -> Result<()> {
        if self.state.lock().crashed {
            Err(frozen_error())
        } else {
            Ok(())
        }
    }

    /// Classify a path into its (write, sync) crash points.
    fn file_points(path: &Path) -> (&'static str, &'static str) {
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        if name.ends_with(".sst") {
            (crash_points::SST_WRITE, crash_points::SST_SYNC)
        } else if name.starts_with("MANIFEST") {
            (crash_points::MANIFEST_WRITE, crash_points::MANIFEST_SYNC)
        } else {
            // wal.log and anything else appends like a log.
            (crash_points::WAL_WRITE, crash_points::WAL_SYNC)
        }
    }

    fn wrap(&self, path: &Path, inner: Box<dyn FsFile>) -> Box<dyn FsFile> {
        let (write_point, sync_point) = Self::file_points(path);
        Box::new(FaultFile {
            inner,
            state: Arc::clone(&self.state),
            write_point,
            sync_point,
        })
    }
}

struct FaultFile {
    inner: Box<dyn FsFile>,
    state: Arc<Mutex<FaultState>>,
    write_point: &'static str,
    sync_point: &'static str,
}

impl Write for FaultFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let verdict = self.state.lock().check_write(self.write_point, buf.len());
        match verdict {
            Ok(()) => self.inner.write(buf),
            Err(usize::MAX) => Err(io_trip_error("frozen")),
            Err(keep) => {
                // Torn write: a prefix lands, then the "process dies".
                let keep = keep.min(buf.len());
                if keep > 0 {
                    self.inner.write_all(&buf[..keep]).ok();
                    self.inner.flush().ok();
                }
                Err(io_trip_error(self.write_point))
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.state.lock().crashed {
            return Err(io_trip_error("frozen"));
        }
        self.inner.flush()
    }
}

impl FsFile for FaultFile {
    fn sync_data(&mut self) -> Result<()> {
        self.state.lock().check(self.sync_point)?;
        self.inner.sync_data()
    }
    fn sync_all(&mut self) -> Result<()> {
        self.state.lock().check(self.sync_point)?;
        self.inner.sync_all()
    }
}

impl StoreFs for FaultFs {
    fn create_dir_all(&self, path: &Path) -> Result<()> {
        self.frozen_guard()?;
        RealFs.create_dir_all(path)
    }

    fn open_append(&self, path: &Path) -> Result<Box<dyn FsFile>> {
        self.frozen_guard()?;
        Ok(self.wrap(path, RealFs.open_append(path)?))
    }

    fn create(&self, path: &Path) -> Result<Box<dyn FsFile>> {
        self.frozen_guard()?;
        Ok(self.wrap(path, RealFs.create(path)?))
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>> {
        self.frozen_guard()?;
        RealFs.read(path)
    }

    fn file_len(&self, path: &Path) -> Result<u64> {
        self.frozen_guard()?;
        RealFs.file_len(path)
    }

    fn exists(&self, path: &Path) -> bool {
        RealFs.exists(path)
    }

    fn truncate(&self, path: &Path, len: u64) -> Result<()> {
        self.check(crash_points::WAL_TRUNCATE)?;
        RealFs.truncate(path, len)
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        if to.file_name().is_some_and(|n| n == "MANIFEST") {
            self.check(crash_points::MANIFEST_RENAME)?;
        } else {
            self.frozen_guard()?;
        }
        RealFs.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> Result<()> {
        self.frozen_guard()?;
        RealFs.remove_file(path)
    }

    fn hard_link_or_copy(&self, from: &Path, to: &Path) -> Result<()> {
        self.frozen_guard()?;
        RealFs.hard_link_or_copy(from, to)
    }

    fn sync_dir(&self, path: &Path) -> Result<()> {
        self.check(crash_points::DIR_SYNC)?;
        RealFs.sync_dir(path)
    }

    fn read_dir_files(&self, path: &Path) -> Result<Vec<String>> {
        self.frozen_guard()?;
        RealFs.read_dir_files(path)
    }

    fn crash_point(&self, name: &'static str) -> Result<()> {
        self.check(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("railgun-vfs-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn realfs_roundtrip() {
        let d = tmp("real");
        let fs = RealFs;
        let p = d.join("f");
        {
            let mut f = fs.create(&p).unwrap();
            f.write_all(b"hello").unwrap();
            f.sync_all().unwrap();
        }
        assert_eq!(fs.read(&p).unwrap(), b"hello");
        assert_eq!(fs.file_len(&p).unwrap(), 5);
        {
            let mut f = fs.open_append(&p).unwrap();
            f.write_all(b" world").unwrap();
            f.sync_data().unwrap();
        }
        assert_eq!(fs.read(&p).unwrap(), b"hello world");
        fs.truncate(&p, 5).unwrap();
        assert_eq!(fs.read(&p).unwrap(), b"hello");
        let p2 = d.join("g");
        fs.rename(&p, &p2).unwrap();
        assert!(!fs.exists(&p));
        assert!(fs.exists(&p2));
        fs.sync_dir(&d).unwrap();
        assert_eq!(fs.read_dir_files(&d).unwrap(), vec!["g".to_owned()]);
        fs.remove_file(&p2).unwrap();
        assert!(!fs.exists(&p2));
    }

    #[test]
    fn faultfs_passthrough_when_unarmed() {
        let d = tmp("pass");
        let fs = FaultFs::new(1);
        let p = d.join("wal.log");
        let mut f = fs.create(&p).unwrap();
        f.write_all(b"data").unwrap();
        f.sync_data().unwrap();
        drop(f);
        assert_eq!(fs.read(&p).unwrap(), b"data");
        assert!(!fs.crashed());
        assert_eq!(fs.hit_count(crash_points::WAL_WRITE), 1);
        assert_eq!(fs.hit_count(crash_points::WAL_SYNC), 1);
    }

    #[test]
    fn torn_write_lands_prefix_and_freezes() {
        let d = tmp("torn");
        let fs = FaultFs::new(42);
        fs.arm(Some(CrashPlan {
            point: crash_points::WAL_WRITE,
            hit: 2,
        }));
        let p = d.join("wal.log");
        let mut f = fs.create(&p).unwrap();
        f.write_all(b"first-frame").unwrap();
        let err = f.write_all(b"second-frame").unwrap_err();
        assert!(err.to_string().contains(INJECTED_TAG));
        assert!(fs.crashed());
        // Frozen: everything fails now.
        assert!(fs.create(&d.join("x")).is_err());
        assert!(fs.read(&p).is_err());
        // The real image holds the first write plus a strict prefix of
        // the second.
        let raw = RealFs.read(&p).unwrap();
        assert!(raw.starts_with(b"first-frame"));
        assert!(raw.len() < b"first-frame".len() + b"second-frame".len());
        assert_eq!(&raw[..], &b"first-framesecond-frame"[..raw.len()]);
    }

    #[test]
    fn sync_and_rename_points_trip() {
        let d = tmp("sync");
        let fs = FaultFs::new(7);
        fs.arm(Some(CrashPlan {
            point: crash_points::MANIFEST_RENAME,
            hit: 1,
        }));
        let tmp_p = d.join("MANIFEST.tmp");
        let mut f = fs.create(&tmp_p).unwrap();
        f.write_all(b"m").unwrap();
        drop(f);
        let err = fs.rename(&tmp_p, &d.join("MANIFEST")).unwrap_err();
        assert!(is_injected(&err));
        // The rename did NOT happen.
        assert!(RealFs.exists(&tmp_p));
        assert!(!RealFs.exists(&d.join("MANIFEST")));
    }

    #[test]
    fn determinism_same_seed_same_tear() {
        let run = |seed: u64| {
            let d = tmp(&format!("det{seed}"));
            let fs = FaultFs::new(seed);
            fs.arm(Some(CrashPlan {
                point: crash_points::WAL_WRITE,
                hit: 1,
            }));
            let p = d.join("wal.log");
            let mut f = fs.create(&p).unwrap();
            f.write_all(&[7u8; 64]).unwrap_err();
            drop(f);
            RealFs.read(&p).unwrap().len()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn registry_is_complete_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for p in crash_points::ALL {
            assert!(seen.insert(*p), "duplicate crash point {p}");
        }
        assert_eq!(crash_points::ALL.len(), 17);
    }
}
