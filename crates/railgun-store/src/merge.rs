//! Newest-wins k-way merge across sorted runs.
//!
//! A point-in-time read view of one column family is the memtable plus its
//! SSTables, newest first. [`MergeIter`] merges any number of sorted
//! `(key, entry)` iterators; when several runs carry the same key, the run
//! with the lowest *precedence index* (newest) wins and the rest are
//! skipped. Tombstones are preserved (the caller decides whether to drop
//! them — compaction of the full set does, a partial merge must not).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::memtable::Entry;

type Kv = (Vec<u8>, Entry);

struct HeapItem {
    key: Vec<u8>,
    entry: Entry,
    /// Lower = newer run = higher precedence.
    precedence: usize,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.precedence == other.precedence
    }
}
impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the smallest key pops first,
        // ties broken so the lowest precedence (newest run) pops first.
        other
            .key
            .cmp(&self.key)
            .then_with(|| other.precedence.cmp(&self.precedence))
    }
}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Merging iterator over sorted runs with newest-wins shadowing.
pub struct MergeIter<'a> {
    sources: Vec<Box<dyn Iterator<Item = Kv> + 'a>>,
    heap: BinaryHeap<HeapItem>,
    drop_tombstones: bool,
}

impl<'a> MergeIter<'a> {
    /// Build a merge over `sources`, ordered newest (index 0) to oldest.
    ///
    /// If `drop_tombstones` is set, deleted keys are omitted from the
    /// output — only valid when `sources` covers *every* run of the
    /// column family (i.e. a full compaction or a user-facing scan).
    pub fn new(sources: Vec<Box<dyn Iterator<Item = Kv> + 'a>>, drop_tombstones: bool) -> Self {
        let mut it = MergeIter {
            sources,
            heap: BinaryHeap::new(),
            drop_tombstones,
        };
        for i in 0..it.sources.len() {
            it.advance_source(i);
        }
        it
    }

    fn advance_source(&mut self, i: usize) {
        if let Some((key, entry)) = self.sources[i].next() {
            self.heap.push(HeapItem {
                key,
                entry,
                precedence: i,
            });
        }
    }
}

impl Iterator for MergeIter<'_> {
    type Item = Kv;

    fn next(&mut self) -> Option<Kv> {
        loop {
            let top = self.heap.pop()?;
            self.advance_source(top.precedence);
            // Skip older duplicates of the same key.
            while let Some(peek) = self.heap.peek() {
                if peek.key == top.key {
                    let dup = self.heap.pop().expect("peeked");
                    self.advance_source(dup.precedence);
                } else {
                    break;
                }
            }
            if top.entry.is_none() && self.drop_tombstones {
                continue;
            }
            return Some((top.key, top.entry));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(items: Vec<(&str, Option<&str>)>) -> Box<dyn Iterator<Item = Kv>> {
        Box::new(
            items
                .into_iter()
                .map(|(k, v)| (k.as_bytes().to_vec(), v.map(|s| s.as_bytes().to_vec())))
                .collect::<Vec<_>>()
                .into_iter(),
        )
    }

    fn collect(it: MergeIter<'_>) -> Vec<(String, Option<String>)> {
        it.map(|(k, v)| {
            (
                String::from_utf8(k).unwrap(),
                v.map(|v| String::from_utf8(v).unwrap()),
            )
        })
        .collect()
    }

    #[test]
    fn merges_disjoint_runs_in_order() {
        let m = MergeIter::new(
            vec![
                run(vec![("b", Some("1"))]),
                run(vec![("a", Some("2")), ("c", Some("3"))]),
            ],
            false,
        );
        let got = collect(m);
        assert_eq!(
            got,
            vec![
                ("a".into(), Some("2".into())),
                ("b".into(), Some("1".into())),
                ("c".into(), Some("3".into())),
            ]
        );
    }

    #[test]
    fn newest_run_shadows_older() {
        let m = MergeIter::new(
            vec![
                run(vec![("k", Some("new"))]),
                run(vec![("k", Some("old"))]),
            ],
            false,
        );
        assert_eq!(collect(m), vec![("k".into(), Some("new".into()))]);
    }

    #[test]
    fn three_way_shadowing_picks_newest() {
        let m = MergeIter::new(
            vec![
                run(vec![("k", Some("v2"))]),
                run(vec![("k", Some("v1"))]),
                run(vec![("k", Some("v0"))]),
            ],
            false,
        );
        assert_eq!(collect(m), vec![("k".into(), Some("v2".into()))]);
    }

    #[test]
    fn tombstone_shadow_and_drop() {
        let sources = || {
            vec![
                run(vec![("a", None), ("b", Some("live"))]),
                run(vec![("a", Some("dead")), ("b", Some("old"))]),
            ]
        };
        // Without dropping: tombstone surfaces.
        let kept = collect(MergeIter::new(sources(), false));
        assert_eq!(
            kept,
            vec![("a".into(), None), ("b".into(), Some("live".into()))]
        );
        // With dropping: key disappears entirely.
        let dropped = collect(MergeIter::new(sources(), true));
        assert_eq!(dropped, vec![("b".into(), Some("live".into()))]);
    }

    #[test]
    fn empty_sources() {
        let m = MergeIter::new(vec![], false);
        assert_eq!(m.count(), 0);
        let m = MergeIter::new(vec![run(vec![]), run(vec![])], true);
        assert_eq!(m.count(), 0);
    }

    #[test]
    fn resurrection_after_tombstone() {
        // Newest run re-inserts a key deleted by a middle run.
        let m = MergeIter::new(
            vec![
                run(vec![("k", Some("back"))]),
                run(vec![("k", None)]),
                run(vec![("k", Some("orig"))]),
            ],
            true,
        );
        assert_eq!(collect(m), vec![("k".into(), Some("back".into()))]);
    }
}
