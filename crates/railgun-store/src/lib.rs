//! # railgun-store — embedded LSM key-value store
//!
//! Railgun (the paper, §4.1.3) keeps per-metric aggregation state in an
//! embedded RocksDB instance. This crate is a from-scratch substitute with
//! the same shape: a log-structured merge store with
//!
//! * an in-memory **memtable** per column family ([`memtable`]),
//! * a shared, CRC-framed **write-ahead log** for crash recovery ([`wal`]),
//! * immutable, block-structured **SSTables** with per-table bloom filters
//!   ([`sstable`], [`bloom`]),
//! * newest-wins **merge iterators** across memtable + tables ([`merge`]),
//! * size-tiered **compaction** ([`db`]),
//! * **column families** (used by `countDistinct` auxiliary state, §4.1.3)
//!   with per-CF tuning and compaction filters ([`options`]) — dead state
//!   (expired windows, unregistered queries) is dropped during merges
//!   instead of being deleted key-by-key,
//! * cheap **checkpoints** that flush and snapshot the current tables
//!   ([`checkpoint`]), matching the paper's observation that checkpoints are
//!   efficient because data is frequently persisted anyway,
//! * a **virtual filesystem seam** ([`vfs`]) with deterministic fault
//!   injection ([`FaultFs`]) and a **crash-torture harness** ([`torture`])
//!   that proves the recovery claims above by sweeping every registered
//!   crash point.
//!
//! The public entry point is [`Db`].
//!
//! ```
//! use railgun_store::{Db, DbOptions};
//! let dir = std::env::temp_dir().join(format!("railgun-doc-{}", std::process::id()));
//! let db = Db::open(&dir, DbOptions::default()).unwrap();
//! db.put(Db::DEFAULT_CF, b"k", b"v").unwrap();
//! assert_eq!(db.get(Db::DEFAULT_CF, b"k").unwrap().as_deref(), Some(&b"v"[..]));
//! # drop(db); std::fs::remove_dir_all(&dir).ok();
//! ```

pub mod bloom;
pub mod checkpoint;
pub mod db;
pub mod memtable;
pub mod merge;
pub mod options;
pub mod sstable;
pub mod torture;
pub mod vfs;
pub mod wal;

pub use db::{CfStats, ColumnFamilyId, Db, DbOptions, DbStats, RecoveryReport};
pub use options::{CfOptions, CompactionFilter, FilterDecision, WriteBufferBudget};
pub use vfs::{crash_points, CrashPlan, FaultFs, RealFs, StoreFs};
pub use wal::WalRecoveryMode;
