//! The database facade: column families, WAL-backed writes, flush,
//! compaction, and scans.
//!
//! One [`Db`] corresponds to one RocksDB instance in the paper: each task
//! processor owns one (share-nothing, §4.1), holding its aggregation states
//! and auxiliary data. The write path is WAL append → memtable; reads merge
//! the memtable with the SSTables newest-first; background maintenance is
//! explicit (`flush`, `compact`) so the engine can schedule it off the
//! latency-critical path.

use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::{Buf, BufMut};
use parking_lot::Mutex;
use railgun_types::encode::{crc32c, get_string, get_uvarint, put_bytes, put_uvarint};
use railgun_types::{Counter, RailgunError, Recorder, Result};

use crate::memtable::{Entry, MemTable};
use crate::merge::MergeIter;
use crate::options::{CfOptions, FilterDecision, WriteBufferBudget};
use crate::sstable::{SstReader, SstWriter};
use crate::vfs::{crash_points, RealFs, StoreFs};
use crate::wal::{Wal, WalRecord, WalRecoveryMode};

/// Identifier of a column family within a [`Db`].
pub type ColumnFamilyId = u32;

/// Tuning options for a [`Db`].
#[derive(Debug, Clone)]
pub struct DbOptions {
    /// Flush a memtable once its approximate size exceeds this.
    pub memtable_budget_bytes: usize,
    /// Target uncompressed data-block size inside SSTables.
    pub block_size: usize,
    /// Bloom filter density; 0 disables blooms (ablation knob).
    pub bloom_bits_per_key: usize,
    /// Compact a column family once it accumulates this many SSTables.
    pub compaction_trigger: usize,
    /// fsync the WAL on every write (durable, slow) instead of on flush.
    pub sync_wal: bool,
    /// Telemetry: WAL-append latency recorder (off by default — a
    /// disabled recorder never reads the clock; see
    /// `railgun_types::metrics`).
    pub wal_recorder: Recorder,
    /// Telemetry: memtable-flush latency recorder (off by default).
    pub flush_recorder: Recorder,
    /// The filesystem seam every durable byte passes through.
    /// [`RealFs`] in production; swap in [`crate::vfs::FaultFs`] to test
    /// crash behaviour deterministically.
    pub fs: Arc<dyn StoreFs>,
    /// Policy for a torn/corrupt WAL tail at open (see
    /// [`WalRecoveryMode`]).
    pub wal_recovery: WalRecoveryMode,
    /// Telemetry: bytes of torn WAL tail cut at open (off by default).
    pub wal_truncated_counter: Counter,
    /// Telemetry: orphaned SSTables quarantined at open (off by default).
    pub orphan_counter: Counter,
    /// Per-column-family overrides, matched by CF name both at open (for
    /// CFs recovered from the manifest) and at [`Db::create_cf`]. A CF
    /// without an entry derives its [`CfOptions`] from the global fields
    /// above — existing single-policy configurations behave exactly as
    /// before.
    pub cf_options: Vec<(String, CfOptions)>,
    /// Optional process-wide memtable budget shared across databases
    /// (one per task processor on a node). When the shared total crosses
    /// the cap, the database observing the crossing flushes its largest
    /// memtable. `None` (the default) disables global accounting.
    pub write_buffer: Option<Arc<WriteBufferBudget>>,
}

impl Default for DbOptions {
    fn default() -> Self {
        DbOptions {
            memtable_budget_bytes: 4 << 20,
            block_size: crate::sstable::DEFAULT_BLOCK_SIZE,
            bloom_bits_per_key: 10,
            compaction_trigger: 4,
            sync_wal: false,
            wal_recorder: Recorder::disabled(),
            flush_recorder: Recorder::disabled(),
            fs: RealFs::shared(),
            wal_recovery: WalRecoveryMode::default(),
            wal_truncated_counter: Counter::disabled(),
            orphan_counter: Counter::disabled(),
            cf_options: Vec::new(),
            write_buffer: None,
        }
    }
}

impl DbOptions {
    /// The [`CfOptions`] a column family named `name` gets: its
    /// [`DbOptions::cf_options`] entry if present, else the global fields.
    fn resolve_cf_opts(&self, name: &str) -> CfOptions {
        self.cf_options
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, o)| o.clone())
            .unwrap_or(CfOptions {
                memtable_budget_bytes: self.memtable_budget_bytes,
                compaction_trigger: self.compaction_trigger,
                bloom_bits_per_key: self.bloom_bits_per_key,
                filter: None,
            })
    }
}

/// Point-in-time statistics, used by benches and ablations. The
/// aggregate fields are exactly the column sums of [`DbStats::per_cf`]
/// (pinned by a regression test — they used to drift in multi-CF
/// databases because any over-budget CF flushed *every* CF).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DbStats {
    pub column_families: usize,
    pub memtable_bytes: usize,
    pub memtable_entries: usize,
    pub sst_count: usize,
    pub sst_entries: u64,
    pub sst_bytes: u64,
    pub flushes: u64,
    pub compactions: u64,
    /// Live entries dropped by compaction filters over this handle's
    /// lifetime (in-memory counter, not persisted across opens).
    pub filter_dropped: u64,
    /// Per-column-family breakdown, sorted by CF id.
    pub per_cf: Vec<CfStats>,
}

/// Per-column-family slice of [`DbStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CfStats {
    pub id: ColumnFamilyId,
    pub name: String,
    pub memtable_bytes: usize,
    pub memtable_entries: usize,
    pub sst_count: usize,
    pub sst_entries: u64,
    pub sst_bytes: u64,
}

struct SstHandle {
    file_no: u64,
    reader: SstReader,
}

struct CfState {
    name: String,
    opts: CfOptions,
    mem: MemTable,
    /// Newest first.
    ssts: Vec<SstHandle>,
}

struct Inner {
    cfs: HashMap<ColumnFamilyId, CfState>,
    next_cf_id: ColumnFamilyId,
    next_file_no: u64,
    wal: Wal,
    flushes: u64,
    compactions: u64,
    filter_dropped: u64,
    /// This database's last contribution reported to the shared
    /// [`WriteBufferBudget`] (0 when none is configured).
    wb_reported: usize,
}

/// What [`Db::open`] had to repair while bringing the on-disk image
/// online. Also surfaced through [`DbOptions::wal_truncated_counter`] /
/// [`DbOptions::orphan_counter`] for the telemetry plane.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Bytes of torn/corrupt WAL tail cut before accepting appends.
    pub wal_truncated_bytes: u64,
    /// Intact WAL records replayed into memtables.
    pub wal_records_replayed: u64,
    /// Unreferenced `*.sst` files moved into [`QUARANTINE_DIR`].
    pub orphaned_sstables_quarantined: u64,
    /// Stale `*.tmp` files (interrupted manifest writes) deleted.
    pub stale_tmp_removed: u64,
}

/// An embedded LSM key-value store with column families.
pub struct Db {
    dir: PathBuf,
    opts: DbOptions,
    inner: Mutex<Inner>,
    recovery: RecoveryReport,
}

const MANIFEST: &str = "MANIFEST";
const MANIFEST_TMP: &str = "MANIFEST.tmp";
const WAL_FILE: &str = "wal.log";
const MANIFEST_MAGIC: u64 = 0x5241_494c_4d41_4e01;
/// Subdirectory orphaned SSTables are moved into at open — never deleted,
/// so a recovery bug can be diagnosed from the quarantined bytes.
pub const QUARANTINE_DIR: &str = "quarantine";

impl Db {
    /// The column family every database starts with.
    pub const DEFAULT_CF: ColumnFamilyId = 0;

    /// Open (or create) a database in `dir`.
    ///
    /// Recovery happens here, in order: load the manifest (the only
    /// source of truth for live SSTables), sweep the directory — stale
    /// `*.tmp` files are deleted, unreferenced `*.sst` files are
    /// quarantined, never deleted — then scan the WAL once, cutting a
    /// torn tail under [`WalRecoveryMode::TolerateTornTail`] before the
    /// append handle opens, and replay the intact records. What was
    /// repaired is reported via [`Db::recovery_report`].
    pub fn open(dir: &Path, opts: DbOptions) -> Result<Self> {
        let fs = Arc::clone(&opts.fs);
        fs.create_dir_all(dir)?;
        let manifest_path = dir.join(MANIFEST);
        let had_manifest = fs.exists(&manifest_path);
        let (mut cfs, next_cf_id, next_file_no) = if had_manifest {
            Self::load_manifest(fs.as_ref(), dir, &manifest_path, &opts)?
        } else {
            let mut cfs = HashMap::new();
            cfs.insert(
                Self::DEFAULT_CF,
                CfState {
                    name: "default".to_owned(),
                    opts: opts.resolve_cf_opts("default"),
                    mem: MemTable::new(),
                    ssts: Vec::new(),
                },
            );
            (cfs, 1, 1)
        };
        // Sweep the directory before accepting writes. A crash between
        // SST creation and the manifest update leaves unreferenced
        // tables; a crash between a compaction's manifest update and
        // input deletion leaves the (now shadowed) inputs. Neither may
        // ever be read again, so move them aside.
        let mut report = RecoveryReport::default();
        let referenced: HashSet<String> = cfs
            .values()
            .flat_map(|cf| cf.ssts.iter().map(|h| sst_file_name(h.file_no)))
            .collect();
        for name in fs.read_dir_files(dir)? {
            let path = dir.join(&name);
            if name.ends_with(".tmp") {
                fs.remove_file(&path)?;
                report.stale_tmp_removed += 1;
            } else if name.ends_with(".sst") && !referenced.contains(&name) {
                let qdir = dir.join(QUARANTINE_DIR);
                fs.create_dir_all(&qdir)?;
                fs.rename(&path, &qdir.join(&name))?;
                report.orphaned_sstables_quarantined += 1;
            }
        }
        opts.orphan_counter.add(report.orphaned_sstables_quarantined);
        // Recover unflushed writes in the same scan that opens the WAL
        // (a torn tail is cut before the append handle is created, so
        // new records stay reachable at the next replay).
        let (wal, wal_recovery) = Wal::open(
            Arc::clone(&fs),
            &dir.join(WAL_FILE),
            opts.sync_wal,
            opts.wal_recovery,
        )?;
        report.wal_truncated_bytes = wal_recovery.truncated_bytes;
        report.wal_records_replayed = wal_recovery.records.len() as u64;
        opts.wal_truncated_counter.add(wal_recovery.truncated_bytes);
        for rec in wal_recovery.records {
            match rec {
                WalRecord::Put { cf, key, value } => {
                    if let Some(state) = cfs.get_mut(&cf) {
                        state.mem.put(&key, &value);
                    }
                }
                WalRecord::Delete { cf, key } => {
                    if let Some(state) = cfs.get_mut(&cf) {
                        state.mem.delete(&key);
                    }
                }
            }
        }
        let db = Db {
            dir: dir.to_path_buf(),
            opts,
            inner: Mutex::new(Inner {
                cfs,
                next_cf_id,
                next_file_no,
                wal,
                flushes: 0,
                compactions: 0,
                filter_dropped: 0,
                wb_reported: 0,
            }),
            recovery: report,
        };
        if !had_manifest {
            db.write_manifest(&db.inner.lock())?;
        }
        // WAL replay may have repopulated memtables; account for them
        // against the shared budget before the first write.
        if let Some(budget) = &db.opts.write_buffer {
            let mut inner = db.inner.lock();
            Self::report_write_buffer(&mut inner, budget);
        }
        Ok(db)
    }

    /// What the open-time recovery pass repaired (all zero on a clean
    /// open).
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    fn load_manifest(
        fs: &dyn StoreFs,
        dir: &Path,
        path: &Path,
        opts: &DbOptions,
    ) -> Result<(HashMap<ColumnFamilyId, CfState>, ColumnFamilyId, u64)> {
        let raw = fs.read(path)?;
        if raw.len() < 4 {
            return Err(RailgunError::Corruption("manifest too small".into()));
        }
        let (payload, crc_bytes) = raw.split_at(raw.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4b"));
        if crc32c(payload) != stored {
            return Err(RailgunError::Corruption("manifest crc mismatch".into()));
        }
        let mut cur = payload;
        if cur.remaining() < 8 || cur.get_u64_le() != MANIFEST_MAGIC {
            return Err(RailgunError::Corruption("bad manifest magic".into()));
        }
        let next_cf_id = get_uvarint(&mut cur)? as u32;
        let next_file_no = get_uvarint(&mut cur)?;
        let cf_count = get_uvarint(&mut cur)? as usize;
        let mut cfs = HashMap::with_capacity(cf_count);
        for _ in 0..cf_count {
            let cf_id = get_uvarint(&mut cur)? as u32;
            let name = get_string(&mut cur)?;
            let sst_count = get_uvarint(&mut cur)? as usize;
            let mut ssts = Vec::with_capacity(sst_count);
            for _ in 0..sst_count {
                let file_no = get_uvarint(&mut cur)?;
                let reader = SstReader::open(fs, &dir.join(sst_file_name(file_no)))?;
                ssts.push(SstHandle { file_no, reader });
            }
            let cf_opts = opts.resolve_cf_opts(&name);
            cfs.insert(
                cf_id,
                CfState {
                    name,
                    opts: cf_opts,
                    mem: MemTable::new(),
                    ssts,
                },
            );
        }
        Ok((cfs, next_cf_id, next_file_no))
    }

    fn write_manifest(&self, inner: &Inner) -> Result<()> {
        let mut buf = Vec::new();
        buf.put_u64_le(MANIFEST_MAGIC);
        put_uvarint(&mut buf, u64::from(inner.next_cf_id));
        put_uvarint(&mut buf, inner.next_file_no);
        let mut ids: Vec<_> = inner.cfs.keys().copied().collect();
        ids.sort_unstable();
        put_uvarint(&mut buf, ids.len() as u64);
        for id in ids {
            let cf = &inner.cfs[&id];
            put_uvarint(&mut buf, u64::from(id));
            put_bytes(&mut buf, cf.name.as_bytes());
            put_uvarint(&mut buf, cf.ssts.len() as u64);
            for h in &cf.ssts {
                put_uvarint(&mut buf, h.file_no);
            }
        }
        let crc = crc32c(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        let fs = &self.opts.fs;
        let tmp = self.dir.join(MANIFEST_TMP);
        {
            let mut f = fs.create(&tmp)?;
            f.write_all(&buf)?;
            f.sync_all()?;
        }
        fs.rename(&tmp, &self.dir.join(MANIFEST))?;
        // An fsync of the file does not cover its directory entry: without
        // this, a crash can roll back the rename itself (and the entries
        // of any SSTs created alongside it).
        fs.sync_dir(&self.dir)?;
        Ok(())
    }

    /// Create a new column family with options resolved from
    /// [`DbOptions::cf_options`] (global fallbacks when no entry matches).
    /// Fails if the name is taken.
    pub fn create_cf(&self, name: &str) -> Result<ColumnFamilyId> {
        self.create_cf_with(name, self.opts.resolve_cf_opts(name))
    }

    /// Create a new column family with explicit [`CfOptions`]. Fails if
    /// the name is taken.
    pub fn create_cf_with(&self, name: &str, cf_opts: CfOptions) -> Result<ColumnFamilyId> {
        let mut inner = self.inner.lock();
        if inner.cfs.values().any(|cf| cf.name == name) {
            return Err(RailgunError::InvalidArgument(format!(
                "column family `{name}` already exists"
            )));
        }
        let id = inner.next_cf_id;
        inner.next_cf_id += 1;
        inner.cfs.insert(
            id,
            CfState {
                name: name.to_owned(),
                opts: cf_opts,
                mem: MemTable::new(),
                ssts: Vec::new(),
            },
        );
        self.write_manifest(&inner)?;
        Ok(id)
    }

    /// Look up a column family id by name.
    pub fn cf_by_name(&self, name: &str) -> Option<ColumnFamilyId> {
        self.inner
            .lock()
            .cfs
            .iter()
            .find(|(_, cf)| cf.name == name)
            .map(|(id, _)| *id)
    }

    /// Write `key = value` in column family `cf`.
    pub fn put(&self, cf: ColumnFamilyId, key: &[u8], value: &[u8]) -> Result<()> {
        let mut inner = self.inner.lock();
        if !inner.cfs.contains_key(&cf) {
            return Err(RailgunError::NotFound(format!("column family {cf}")));
        }
        let timer = self.opts.wal_recorder.start();
        inner.wal.append_put(cf, key, value)?;
        self.opts.wal_recorder.finish(timer);
        inner
            .cfs
            .get_mut(&cf)
            .expect("checked above")
            .mem
            .put(key, value);
        self.maybe_flush_locked(&mut inner)
    }

    /// Delete `key` in column family `cf`.
    pub fn delete(&self, cf: ColumnFamilyId, key: &[u8]) -> Result<()> {
        let mut inner = self.inner.lock();
        if !inner.cfs.contains_key(&cf) {
            return Err(RailgunError::NotFound(format!("column family {cf}")));
        }
        let timer = self.opts.wal_recorder.start();
        inner.wal.append_delete(cf, key)?;
        self.opts.wal_recorder.finish(timer);
        inner
            .cfs
            .get_mut(&cf)
            .expect("checked above")
            .mem
            .delete(key);
        self.maybe_flush_locked(&mut inner)
    }

    /// Read the current value of `key`, if live.
    pub fn get(&self, cf: ColumnFamilyId, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.get_in(cf, key, <[u8]>::to_vec)
    }

    /// Read `key` and apply `f` to the value in place — the hot-path read
    /// that avoids cloning the value out of the memtable (aggregation
    /// states are decoded directly from the borrowed bytes).
    pub fn get_in<T>(
        &self,
        cf: ColumnFamilyId,
        key: &[u8],
        f: impl FnOnce(&[u8]) -> T,
    ) -> Result<Option<T>> {
        let inner = self.inner.lock();
        let state = inner
            .cfs
            .get(&cf)
            .ok_or_else(|| RailgunError::NotFound(format!("column family {cf}")))?;
        if let Some(entry) = state.mem.get(key) {
            return Ok(entry.as_deref().map(f));
        }
        for h in &state.ssts {
            if let Some(entry) = h.reader.get(key)? {
                return Ok(entry.as_deref().map(f));
            }
        }
        Ok(None)
    }

    /// Scan all live keys in `[start, end)` (end `None` = unbounded),
    /// merged across memtable and SSTables, tombstones elided.
    pub fn scan(
        &self,
        cf: ColumnFamilyId,
        start: &[u8],
        end: Option<&[u8]>,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let inner = self.inner.lock();
        let state = inner
            .cfs
            .get(&cf)
            .ok_or_else(|| RailgunError::NotFound(format!("column family {cf}")))?;
        let mut sources: Vec<Box<dyn Iterator<Item = (Vec<u8>, Entry)>>> = Vec::new();
        let mem_items: Vec<(Vec<u8>, Entry)> = state
            .mem
            .range(start, end)
            .map(|(k, v)| (k.to_vec(), v.clone()))
            .collect();
        sources.push(Box::new(mem_items.into_iter()));
        for h in &state.ssts {
            let items: Vec<(Vec<u8>, Entry)> = h.reader.range(start, end).collect();
            sources.push(Box::new(items.into_iter()));
        }
        Ok(MergeIter::new(sources, true)
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect())
    }

    /// Scan all live keys sharing `prefix`.
    pub fn scan_prefix(
        &self,
        cf: ColumnFamilyId,
        prefix: &[u8],
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        match prefix_upper_bound(prefix) {
            Some(end) => self.scan(cf, prefix, Some(&end)),
            None => self.scan(cf, prefix, None),
        }
    }

    fn maybe_flush_locked(&self, inner: &mut Inner) -> Result<()> {
        // Per-CF budgets: flush exactly the over-budget column families.
        // (Flushing all of them — the old behaviour — littered idle CFs
        // with one-entry SSTables and made the aggregate stats drift.)
        let over: Vec<ColumnFamilyId> = inner
            .cfs
            .iter()
            .filter(|(_, cf)| cf.mem.approx_bytes() > cf.opts.memtable_budget_bytes)
            .map(|(id, _)| *id)
            .collect();
        let mut flushed = !over.is_empty();
        if flushed {
            let timer = self.opts.flush_recorder.start();
            let result = self.flush_cfs_locked(inner, over);
            self.opts.flush_recorder.finish(timer);
            result?;
        }
        // Process-wide budget: while the shared total is over the cap,
        // flush this database's largest memtable (the cheapest local
        // action that frees the most of the shared budget).
        if let Some(budget) = &self.opts.write_buffer {
            Self::report_write_buffer(inner, budget);
            while budget.over() {
                let largest = inner
                    .cfs
                    .iter()
                    .filter(|(_, cf)| !cf.mem.is_empty())
                    .max_by_key(|(_, cf)| cf.mem.approx_bytes())
                    .map(|(id, _)| *id);
                // All local memtables empty: another database holds the
                // bytes and will shed them on its own next write.
                let Some(id) = largest else { break };
                let timer = self.opts.flush_recorder.start();
                let result = self.flush_cfs_locked(inner, vec![id]);
                self.opts.flush_recorder.finish(timer);
                result?;
                flushed = true;
                Self::report_write_buffer(inner, budget);
            }
        }
        if flushed {
            self.maybe_compact_locked(inner)?;
        }
        Ok(())
    }

    /// Refresh this database's contribution to the shared budget.
    fn report_write_buffer(inner: &mut Inner, budget: &WriteBufferBudget) {
        let total: usize = inner.cfs.values().map(|cf| cf.mem.approx_bytes()).sum();
        inner.wb_reported = budget.report(inner.wb_reported, total);
    }

    /// Flush every non-empty memtable to a new SSTable and truncate the WAL.
    pub fn flush(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        self.flush_locked(&mut inner)
    }

    fn flush_locked(&self, inner: &mut Inner) -> Result<()> {
        let cf_ids: Vec<ColumnFamilyId> = inner
            .cfs
            .iter()
            .filter(|(_, cf)| !cf.mem.is_empty())
            .map(|(id, _)| *id)
            .collect();
        if cf_ids.is_empty() {
            return Ok(());
        }
        let timer = self.opts.flush_recorder.start();
        let result = self.flush_cfs_locked(inner, cf_ids);
        self.opts.flush_recorder.finish(timer);
        if let Some(budget) = &self.opts.write_buffer {
            Self::report_write_buffer(inner, budget);
        }
        result
    }

    fn flush_cfs_locked(&self, inner: &mut Inner, cf_ids: Vec<ColumnFamilyId>) -> Result<()> {
        let fs = Arc::clone(&self.opts.fs);
        for id in cf_ids {
            let file_no = inner.next_file_no;
            inner.next_file_no += 1;
            let path = self.dir.join(sst_file_name(file_no));
            let cf = inner.cfs.get_mut(&id).expect("cf exists");
            let mut w = SstWriter::create(
                fs.as_ref(),
                &path,
                self.opts.block_size,
                cf.opts.bloom_bits_per_key.max(1),
            )?;
            for (k, entry) in cf.mem.drain_sorted() {
                w.add(&k, &entry)?;
            }
            w.finish()?;
            let reader = SstReader::open(fs.as_ref(), &path)?;
            cf.ssts.insert(0, SstHandle { file_no, reader });
            inner.flushes += 1;
        }
        // SSTs are durable but unreferenced until the manifest lands; a
        // crash here leaves orphans for the open-time quarantine sweep,
        // with the data still covered by the WAL.
        fs.crash_point(crash_points::FLUSH_BEFORE_MANIFEST)?;
        self.write_manifest(inner)?;
        // A crash here replays WAL records already covered by the new
        // SSTs — put/delete replay is idempotent, so that is safe.
        fs.crash_point(crash_points::FLUSH_BEFORE_WAL_TRUNCATE)?;
        if inner.cfs.values().all(|cf| cf.mem.is_empty()) {
            inner.wal.truncate()?;
        } else {
            // Partial flush: the WAL must keep covering the column
            // families that did not flush, so rebuild it atomically from
            // their surviving memtable entries instead of truncating.
            let inner = &mut *inner;
            let cfs = &inner.cfs;
            inner.wal.rewrite(cfs.iter().flat_map(|(id, cf)| {
                cf.mem.iter().map(move |(k, e)| (*id, k, e.as_deref()))
            }))?;
        }
        Ok(())
    }

    fn maybe_compact_locked(&self, inner: &mut Inner) -> Result<()> {
        let ids: Vec<ColumnFamilyId> = inner
            .cfs
            .iter()
            .filter(|(_, cf)| cf.ssts.len() >= cf.opts.compaction_trigger)
            .map(|(id, _)| *id)
            .collect();
        for id in ids {
            self.compact_cf_locked(inner, id)?;
        }
        Ok(())
    }

    /// Merge every SSTable of `cf` into one, dropping shadowed versions,
    /// tombstones, and (when the CF has a [`CompactionFilter`]
    /// installed) every live entry the filter discards.
    ///
    /// [`CompactionFilter`]: crate::CompactionFilter
    pub fn compact_cf(&self, cf: ColumnFamilyId) -> Result<()> {
        let mut inner = self.inner.lock();
        if !inner.cfs.contains_key(&cf) {
            return Err(RailgunError::NotFound(format!("column family {cf}")));
        }
        self.compact_cf_locked(&mut inner, cf)
    }

    fn compact_cf_locked(&self, inner: &mut Inner, id: ColumnFamilyId) -> Result<()> {
        let filter = inner.cfs.get(&id).expect("cf exists").opts.filter.clone();
        // A filterless compaction needs at least two inputs to do useful
        // work; with a filter installed, rewriting even a single table
        // reclaims dead entries on demand.
        let min_inputs = if filter.is_some() { 1 } else { 2 };
        if inner.cfs[&id].ssts.len() < min_inputs {
            return Ok(());
        }
        let file_no = inner.next_file_no;
        inner.next_file_no += 1;
        let path = self.dir.join(sst_file_name(file_no));
        let fs = Arc::clone(&self.opts.fs);
        let cf = inner.cfs.get_mut(&id).expect("cf exists");
        let mut dropped = 0u64;
        {
            let sources: Vec<Box<dyn Iterator<Item = (Vec<u8>, Entry)> + '_>> = cf
                .ssts
                .iter()
                .map(|h| Box::new(h.reader.iter()) as Box<dyn Iterator<Item = (Vec<u8>, Entry)>>)
                .collect();
            // Tombstones can be dropped: this merge covers every sorted run
            // older than the memtable, so nothing older remains to shadow.
            let merged = MergeIter::new(sources, true);
            let mut w = SstWriter::create(
                fs.as_ref(),
                &path,
                self.opts.block_size,
                cf.opts.bloom_bits_per_key.max(1),
            )?;
            for (k, entry) in merged {
                if let (Some(flt), Some(v)) = (filter.as_deref(), entry.as_deref()) {
                    if flt.filter(&k, v) == FilterDecision::Discard {
                        dropped += 1;
                        continue;
                    }
                }
                w.add(&k, &entry)?;
            }
            w.finish()?;
        }
        // The merged table is durable but the manifest still references
        // the inputs — a crash here quarantines the merged table at the
        // next open and keeps serving from the inputs.
        fs.crash_point(crash_points::COMPACT_BEFORE_MANIFEST)?;
        if dropped > 0 {
            // Same window, filter-specific: the output omits filtered
            // entries but recovery must keep serving them from the
            // still-referenced inputs (filtered keys may legally
            // reappear until the swap lands).
            fs.crash_point(crash_points::COMPACT_FILTERED_BEFORE_MANIFEST)?;
        }
        let old: Vec<u64> = cf.ssts.iter().map(|h| h.file_no).collect();
        let reader = SstReader::open(fs.as_ref(), &path)?;
        cf.ssts = vec![SstHandle { file_no, reader }];
        inner.compactions += 1;
        inner.filter_dropped += dropped;
        self.write_manifest(inner)?;
        if dropped > 0 {
            // The manifest now references only the filtered output: the
            // dropped keys must never resurrect, even with the input
            // tables still on disk (quarantined at the next open).
            fs.crash_point(crash_points::COMPACT_FILTERED_AFTER_MANIFEST)?;
        }
        // A crash here leaves the (shadowed) inputs on disk — the
        // quarantine sweep moves them aside at the next open.
        fs.crash_point(crash_points::COMPACT_BEFORE_REMOVE_OLD)?;
        for no in old {
            fs.remove_file(&self.dir.join(sst_file_name(no))).ok();
        }
        Ok(())
    }

    /// Exhaustively check on-disk invariants: every SSTable referenced by
    /// the manifest must decode fully (all block CRCs verify, keys
    /// strictly sorted, decoded entry count matches the footer) and the
    /// WAL must scan cleanly under the configured recovery mode. The
    /// crash-torture harness ([`crate::torture`]) runs this after every
    /// recovery.
    pub fn verify_integrity(&self) -> Result<()> {
        let inner = self.inner.lock();
        for (id, cf) in &inner.cfs {
            for h in &cf.ssts {
                let mut n = 0u64;
                let mut last: Option<Vec<u8>> = None;
                for (k, _) in h.reader.iter() {
                    if let Some(prev) = &last {
                        if &k <= prev {
                            return Err(RailgunError::Corruption(format!(
                                "cf {id}: sst {} keys out of order",
                                h.file_no
                            )));
                        }
                    }
                    last = Some(k);
                    n += 1;
                }
                if n != h.reader.entry_count() {
                    return Err(RailgunError::Corruption(format!(
                        "cf {id}: sst {} decoded {n} of {} entries (corrupt block?)",
                        h.file_no,
                        h.reader.entry_count()
                    )));
                }
            }
        }
        Wal::scan(
            self.opts.fs.as_ref(),
            &self.dir.join(WAL_FILE),
            self.opts.wal_recovery,
        )?;
        Ok(())
    }

    /// Create a consistent checkpoint of the whole database in `target`.
    ///
    /// Flushes all memtables first, then copies the manifest and every live
    /// SSTable. The checkpoint directory can itself be opened with
    /// [`Db::open`] — this is how a recovering task processor bootstraps
    /// from a peer (paper §4.2).
    pub fn checkpoint(&self, target: &Path) -> Result<()> {
        let mut inner = self.inner.lock();
        self.flush_locked(&mut inner)?;
        crate::checkpoint::create(
            self.opts.fs.as_ref(),
            &self.dir,
            target,
            &collect_files(&inner),
        )
    }

    /// Current statistics snapshot. Aggregates are computed as the column
    /// sums of the per-CF breakdown, so they cannot drift from it.
    pub fn stats(&self) -> DbStats {
        let inner = self.inner.lock();
        let mut ids: Vec<ColumnFamilyId> = inner.cfs.keys().copied().collect();
        ids.sort_unstable();
        let per_cf: Vec<CfStats> = ids
            .into_iter()
            .map(|id| {
                let cf = &inner.cfs[&id];
                let mut c = CfStats {
                    id,
                    name: cf.name.clone(),
                    memtable_bytes: cf.mem.approx_bytes(),
                    memtable_entries: cf.mem.len(),
                    sst_count: cf.ssts.len(),
                    ..CfStats::default()
                };
                for h in &cf.ssts {
                    c.sst_entries += h.reader.entry_count();
                    c.sst_bytes += h.reader.file_bytes() as u64;
                }
                c
            })
            .collect();
        let mut s = DbStats {
            column_families: inner.cfs.len(),
            flushes: inner.flushes,
            compactions: inner.compactions,
            filter_dropped: inner.filter_dropped,
            ..DbStats::default()
        };
        for c in &per_cf {
            s.memtable_bytes += c.memtable_bytes;
            s.memtable_entries += c.memtable_entries;
            s.sst_count += c.sst_count;
            s.sst_entries += c.sst_entries;
            s.sst_bytes += c.sst_bytes;
        }
        s.per_cf = per_cf;
        s
    }

    /// Directory this database lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl Drop for Db {
    fn drop(&mut self) {
        // Return this database's contribution to the shared budget so a
        // closed store does not pin the cap for its neighbours.
        if let Some(budget) = &self.opts.write_buffer {
            let mut inner = self.inner.lock();
            let old = std::mem::take(&mut inner.wb_reported);
            budget.report(old, 0);
        }
    }
}

fn collect_files(inner: &Inner) -> Vec<String> {
    let mut files = vec![MANIFEST.to_owned()];
    for cf in inner.cfs.values() {
        for h in &cf.ssts {
            files.push(sst_file_name(h.file_no));
        }
    }
    files
}

fn sst_file_name(no: u64) -> String {
    format!("{no:08}.sst")
}

/// Smallest byte string strictly greater than every string with `prefix`.
fn prefix_upper_bound(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut end = prefix.to_vec();
    while let Some(last) = end.last_mut() {
        if *last < 0xff {
            *last += 1;
            return Some(end);
        }
        end.pop();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn fresh_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("railgun-db-{}-{name}", std::process::id()));
        fs::remove_dir_all(&d).ok();
        d
    }

    fn small_opts() -> DbOptions {
        DbOptions {
            memtable_budget_bytes: 2048,
            compaction_trigger: 3,
            ..DbOptions::default()
        }
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let dir = fresh_dir("basic");
        let db = Db::open(&dir, DbOptions::default()).unwrap();
        db.put(Db::DEFAULT_CF, b"k1", b"v1").unwrap();
        assert_eq!(db.get(Db::DEFAULT_CF, b"k1").unwrap(), Some(b"v1".to_vec()));
        db.delete(Db::DEFAULT_CF, b"k1").unwrap();
        assert_eq!(db.get(Db::DEFAULT_CF, b"k1").unwrap(), None);
        assert_eq!(db.get(Db::DEFAULT_CF, b"nope").unwrap(), None);
    }

    #[test]
    fn reads_span_memtable_and_ssts() {
        let dir = fresh_dir("span");
        let db = Db::open(&dir, DbOptions::default()).unwrap();
        db.put(Db::DEFAULT_CF, b"old", b"1").unwrap();
        db.flush().unwrap();
        db.put(Db::DEFAULT_CF, b"new", b"2").unwrap();
        assert_eq!(db.get(Db::DEFAULT_CF, b"old").unwrap(), Some(b"1".to_vec()));
        assert_eq!(db.get(Db::DEFAULT_CF, b"new").unwrap(), Some(b"2".to_vec()));
        // Overwrite in memtable shadows the SST.
        db.put(Db::DEFAULT_CF, b"old", b"updated").unwrap();
        assert_eq!(
            db.get(Db::DEFAULT_CF, b"old").unwrap(),
            Some(b"updated".to_vec())
        );
        // Tombstone in memtable shadows the SST.
        db.delete(Db::DEFAULT_CF, b"old").unwrap();
        assert_eq!(db.get(Db::DEFAULT_CF, b"old").unwrap(), None);
    }

    #[test]
    fn wal_recovery_after_crash() {
        let dir = fresh_dir("recovery");
        {
            let db = Db::open(&dir, DbOptions::default()).unwrap();
            db.put(Db::DEFAULT_CF, b"persisted", b"yes").unwrap();
            db.delete(Db::DEFAULT_CF, b"persisted2").unwrap();
            // Dropped without flush: WAL must carry the writes.
        }
        let db = Db::open(&dir, DbOptions::default()).unwrap();
        assert_eq!(
            db.get(Db::DEFAULT_CF, b"persisted").unwrap(),
            Some(b"yes".to_vec())
        );
        assert_eq!(db.get(Db::DEFAULT_CF, b"persisted2").unwrap(), None);
    }

    #[test]
    fn restart_after_flush_reads_ssts() {
        let dir = fresh_dir("restart");
        {
            let db = Db::open(&dir, DbOptions::default()).unwrap();
            for i in 0..100u32 {
                db.put(Db::DEFAULT_CF, format!("k{i:04}").as_bytes(), &i.to_le_bytes())
                    .unwrap();
            }
            db.flush().unwrap();
        }
        let db = Db::open(&dir, DbOptions::default()).unwrap();
        for i in (0..100u32).step_by(7) {
            assert_eq!(
                db.get(Db::DEFAULT_CF, format!("k{i:04}").as_bytes()).unwrap(),
                Some(i.to_le_bytes().to_vec())
            );
        }
    }

    #[test]
    fn automatic_flush_and_compaction() {
        let dir = fresh_dir("autoflush");
        let db = Db::open(&dir, small_opts()).unwrap();
        for i in 0..2000u32 {
            db.put(
                Db::DEFAULT_CF,
                format!("key{i:05}").as_bytes(),
                &[0u8; 64],
            )
            .unwrap();
        }
        let stats = db.stats();
        assert!(stats.flushes > 0, "expected automatic flushes");
        assert!(stats.compactions > 0, "expected automatic compactions");
        // All data still readable.
        assert_eq!(
            db.get(Db::DEFAULT_CF, b"key00000").unwrap(),
            Some(vec![0u8; 64])
        );
        assert_eq!(
            db.get(Db::DEFAULT_CF, b"key01999").unwrap(),
            Some(vec![0u8; 64])
        );
    }

    #[test]
    fn compaction_drops_tombstones_and_duplicates() {
        let dir = fresh_dir("compact");
        let db = Db::open(&dir, DbOptions::default()).unwrap();
        db.put(Db::DEFAULT_CF, b"a", b"1").unwrap();
        db.put(Db::DEFAULT_CF, b"b", b"1").unwrap();
        db.flush().unwrap();
        db.put(Db::DEFAULT_CF, b"a", b"2").unwrap();
        db.delete(Db::DEFAULT_CF, b"b").unwrap();
        db.flush().unwrap();
        let before = db.stats();
        assert_eq!(before.sst_count, 2);
        assert_eq!(before.sst_entries, 4);
        db.compact_cf(Db::DEFAULT_CF).unwrap();
        let after = db.stats();
        assert_eq!(after.sst_count, 1);
        assert_eq!(after.sst_entries, 1); // only a=2 survives
        assert_eq!(db.get(Db::DEFAULT_CF, b"a").unwrap(), Some(b"2".to_vec()));
        assert_eq!(db.get(Db::DEFAULT_CF, b"b").unwrap(), None);
    }

    #[test]
    fn column_families_are_isolated() {
        let dir = fresh_dir("cf");
        let db = Db::open(&dir, DbOptions::default()).unwrap();
        let aux = db.create_cf("distinct-aux").unwrap();
        db.put(Db::DEFAULT_CF, b"k", b"default").unwrap();
        db.put(aux, b"k", b"aux").unwrap();
        assert_eq!(db.get(Db::DEFAULT_CF, b"k").unwrap(), Some(b"default".to_vec()));
        assert_eq!(db.get(aux, b"k").unwrap(), Some(b"aux".to_vec()));
        db.delete(aux, b"k").unwrap();
        assert_eq!(db.get(Db::DEFAULT_CF, b"k").unwrap(), Some(b"default".to_vec()));
        assert_eq!(db.get(aux, b"k").unwrap(), None);
    }

    #[test]
    fn column_families_survive_restart() {
        let dir = fresh_dir("cfrestart");
        let aux;
        {
            let db = Db::open(&dir, DbOptions::default()).unwrap();
            aux = db.create_cf("aux").unwrap();
            db.put(aux, b"x", b"1").unwrap();
            db.flush().unwrap();
        }
        let db = Db::open(&dir, DbOptions::default()).unwrap();
        assert_eq!(db.cf_by_name("aux"), Some(aux));
        assert_eq!(db.get(aux, b"x").unwrap(), Some(b"1".to_vec()));
    }

    #[test]
    fn duplicate_cf_name_rejected() {
        let dir = fresh_dir("cfdup");
        let db = Db::open(&dir, DbOptions::default()).unwrap();
        db.create_cf("aux").unwrap();
        assert!(db.create_cf("aux").is_err());
        assert!(db.create_cf("default").is_err());
    }

    #[test]
    fn unknown_cf_errors() {
        let dir = fresh_dir("cfmissing");
        let db = Db::open(&dir, DbOptions::default()).unwrap();
        assert!(db.put(99, b"k", b"v").is_err());
        assert!(db.get(99, b"k").is_err());
        assert!(db.delete(99, b"k").is_err());
        assert!(db.scan(99, b"", None).is_err());
    }

    #[test]
    fn scan_merges_runs_and_elides_tombstones() {
        let dir = fresh_dir("scan");
        let db = Db::open(&dir, DbOptions::default()).unwrap();
        db.put(Db::DEFAULT_CF, b"p/a", b"1").unwrap();
        db.put(Db::DEFAULT_CF, b"p/b", b"2").unwrap();
        db.put(Db::DEFAULT_CF, b"q/c", b"3").unwrap();
        db.flush().unwrap();
        db.put(Db::DEFAULT_CF, b"p/b", b"2-new").unwrap();
        db.delete(Db::DEFAULT_CF, b"p/a").unwrap();
        db.put(Db::DEFAULT_CF, b"p/d", b"4").unwrap();
        let got = db.scan_prefix(Db::DEFAULT_CF, b"p/").unwrap();
        assert_eq!(
            got,
            vec![
                (b"p/b".to_vec(), b"2-new".to_vec()),
                (b"p/d".to_vec(), b"4".to_vec()),
            ]
        );
    }

    #[test]
    fn scan_prefix_handles_0xff_prefix() {
        let dir = fresh_dir("scanff");
        let db = Db::open(&dir, DbOptions::default()).unwrap();
        db.put(Db::DEFAULT_CF, &[0xff, 0x01], b"1").unwrap();
        db.put(Db::DEFAULT_CF, &[0xff, 0xff, 0x02], b"2").unwrap();
        db.put(Db::DEFAULT_CF, &[0x01], b"other").unwrap();
        let got = db.scan_prefix(Db::DEFAULT_CF, &[0xff]).unwrap();
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn checkpoint_is_openable_and_consistent() {
        let dir = fresh_dir("ckpt-src");
        let ckpt = fresh_dir("ckpt-dst");
        let db = Db::open(&dir, DbOptions::default()).unwrap();
        for i in 0..50u32 {
            db.put(Db::DEFAULT_CF, format!("k{i}").as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        db.checkpoint(&ckpt).unwrap();
        // Writes after the checkpoint must not leak into it.
        db.put(Db::DEFAULT_CF, b"later", b"x").unwrap();
        let restored = Db::open(&ckpt, DbOptions::default()).unwrap();
        assert_eq!(
            restored.get(Db::DEFAULT_CF, b"k49").unwrap(),
            Some(49u32.to_le_bytes().to_vec())
        );
        assert_eq!(restored.get(Db::DEFAULT_CF, b"later").unwrap(), None);
    }

    #[test]
    fn stats_reflect_state() {
        let dir = fresh_dir("stats");
        let db = Db::open(&dir, DbOptions::default()).unwrap();
        let s0 = db.stats();
        assert_eq!(s0.column_families, 1);
        assert_eq!(s0.sst_count, 0);
        db.put(Db::DEFAULT_CF, b"k", b"v").unwrap();
        assert!(db.stats().memtable_bytes > 0);
        db.flush().unwrap();
        let s1 = db.stats();
        assert_eq!(s1.memtable_entries, 0);
        assert_eq!(s1.sst_count, 1);
        assert_eq!(s1.sst_entries, 1);
        assert!(s1.sst_bytes > 0);
    }

    #[test]
    fn open_quarantines_orphans_and_removes_stale_tmp() {
        let dir = fresh_dir("quarantine");
        {
            let db = Db::open(&dir, DbOptions::default()).unwrap();
            db.put(Db::DEFAULT_CF, b"live", b"1").unwrap();
            db.flush().unwrap();
        }
        // Simulate a crash between SST creation and the manifest update
        // (orphan) and mid-manifest-write (stale tmp).
        let live_sst = sst_file_name(1);
        fs::copy(dir.join(&live_sst), dir.join("00000099.sst")).unwrap();
        fs::write(dir.join(MANIFEST_TMP), b"partial garbage").unwrap();
        let db = Db::open(&dir, DbOptions::default()).unwrap();
        let rep = db.recovery_report();
        assert_eq!(rep.orphaned_sstables_quarantined, 1);
        assert_eq!(rep.stale_tmp_removed, 1);
        assert!(!dir.join(MANIFEST_TMP).exists());
        assert!(!dir.join("00000099.sst").exists());
        assert!(dir.join(QUARANTINE_DIR).join("00000099.sst").exists());
        assert_eq!(db.get(Db::DEFAULT_CF, b"live").unwrap(), Some(b"1".to_vec()));
        db.verify_integrity().unwrap();
        // A clean reopen repairs nothing.
        drop(db);
        let db = Db::open(&dir, DbOptions::default()).unwrap();
        assert_eq!(db.recovery_report().orphaned_sstables_quarantined, 0);
        assert_eq!(db.recovery_report().stale_tmp_removed, 0);
    }

    #[test]
    fn recovery_report_counts_truncated_wal() {
        let dir = fresh_dir("walreport");
        {
            let db = Db::open(&dir, DbOptions::default()).unwrap();
            db.put(Db::DEFAULT_CF, b"a", b"1").unwrap();
            db.put(Db::DEFAULT_CF, b"b", b"2").unwrap();
        }
        // Tear the last WAL frame.
        let wal = dir.join(WAL_FILE);
        let raw = fs::read(&wal).unwrap();
        fs::write(&wal, &raw[..raw.len() - 3]).unwrap();
        let counter = Counter::enabled();
        let opts = DbOptions {
            wal_truncated_counter: counter.clone(),
            ..DbOptions::default()
        };
        let db = Db::open(&dir, opts).unwrap();
        let rep = db.recovery_report();
        assert!(rep.wal_truncated_bytes > 0);
        assert_eq!(rep.wal_records_replayed, 1);
        assert_eq!(counter.get(), rep.wal_truncated_bytes);
        assert_eq!(db.get(Db::DEFAULT_CF, b"a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(db.get(Db::DEFAULT_CF, b"b").unwrap(), None);
        db.verify_integrity().unwrap();
    }

    #[test]
    fn absolute_consistency_mode_refuses_torn_wal() {
        let dir = fresh_dir("absmode");
        {
            let db = Db::open(&dir, DbOptions::default()).unwrap();
            db.put(Db::DEFAULT_CF, b"a", b"1").unwrap();
        }
        let wal = dir.join(WAL_FILE);
        let raw = fs::read(&wal).unwrap();
        fs::write(&wal, &raw[..raw.len() - 2]).unwrap();
        let opts = DbOptions {
            wal_recovery: WalRecoveryMode::AbsoluteConsistency,
            ..DbOptions::default()
        };
        assert!(matches!(
            Db::open(&dir, opts),
            Err(RailgunError::Corruption(_))
        ));
        // The default mode recovers the same image.
        Db::open(&dir, DbOptions::default()).unwrap();
    }

    #[test]
    fn prefix_upper_bound_logic() {
        assert_eq!(prefix_upper_bound(b"ab"), Some(b"ac".to_vec()));
        assert_eq!(prefix_upper_bound(&[0x01, 0xff]), Some(vec![0x02]));
        assert_eq!(prefix_upper_bound(&[0xff, 0xff]), None);
        assert_eq!(prefix_upper_bound(b""), None);
    }

    /// Discards every key starting with `dead:`.
    #[derive(Debug)]
    struct DeadPrefixFilter;
    impl crate::CompactionFilter for DeadPrefixFilter {
        fn name(&self) -> &str {
            "dead-prefix"
        }
        fn filter(&self, key: &[u8], _value: &[u8]) -> crate::FilterDecision {
            if key.starts_with(b"dead:") {
                crate::FilterDecision::Discard
            } else {
                crate::FilterDecision::Keep
            }
        }
    }

    #[test]
    fn per_cf_budgets_flush_independently() {
        // Regression pin for the multi-CF stats drift: the old code
        // flushed *every* CF once any one crossed the single global
        // budget, littering idle CFs with one-entry SSTables.
        let dir = fresh_dir("percfflush");
        let opts = DbOptions {
            cf_options: vec![(
                "hot".to_owned(),
                CfOptions {
                    memtable_budget_bytes: 512,
                    compaction_trigger: 100,
                    ..CfOptions::default()
                },
            )],
            ..DbOptions::default()
        };
        let db = Db::open(&dir, opts).unwrap();
        let hot = db.create_cf("hot").unwrap();
        db.put(Db::DEFAULT_CF, b"idle-key", b"idle-value").unwrap();
        for i in 0..50u32 {
            db.put(hot, format!("h{i:03}").as_bytes(), &[7u8; 64]).unwrap();
        }
        let s = db.stats();
        let idle = s.per_cf.iter().find(|c| c.name == "default").unwrap();
        let hot_cf = s.per_cf.iter().find(|c| c.name == "hot").unwrap();
        assert!(hot_cf.sst_count > 0, "hot CF should have auto-flushed");
        assert_eq!(idle.sst_count, 0, "idle CF must not be flushed along");
        assert_eq!(idle.memtable_entries, 1);
        // Reads still correct on both sides.
        assert_eq!(
            db.get(Db::DEFAULT_CF, b"idle-key").unwrap(),
            Some(b"idle-value".to_vec())
        );
        assert_eq!(db.get(hot, b"h000").unwrap(), Some(vec![7u8; 64]));
    }

    #[test]
    fn partial_flush_keeps_unflushed_cfs_durable() {
        // After a partial flush the WAL is rewritten, not truncated: the
        // un-flushed CF's records must survive a crash.
        let dir = fresh_dir("partialwal");
        let opts = DbOptions {
            cf_options: vec![(
                "hot".to_owned(),
                CfOptions {
                    memtable_budget_bytes: 512,
                    compaction_trigger: 100,
                    ..CfOptions::default()
                },
            )],
            ..DbOptions::default()
        };
        let aux;
        {
            let db = Db::open(&dir, opts.clone()).unwrap();
            let hot = db.create_cf("hot").unwrap();
            aux = db.create_cf("aux").unwrap();
            db.put(aux, b"unflushed", b"must-survive").unwrap();
            db.delete(aux, b"ghost").unwrap();
            for i in 0..50u32 {
                db.put(hot, format!("h{i:03}").as_bytes(), &[7u8; 64]).unwrap();
            }
            assert!(db.stats().per_cf.iter().any(|c| c.name == "hot" && c.sst_count > 0));
            // Dropped without an explicit flush — simulated crash.
        }
        let db = Db::open(&dir, opts).unwrap();
        assert_eq!(db.get(aux, b"unflushed").unwrap(), Some(b"must-survive".to_vec()));
        assert_eq!(db.get(aux, b"ghost").unwrap(), None);
        db.verify_integrity().unwrap();
    }

    #[test]
    fn compaction_filter_drops_dead_entries() {
        let dir = fresh_dir("cfilter");
        let opts = DbOptions {
            cf_options: vec![(
                "default".to_owned(),
                CfOptions::default().with_filter(Arc::new(DeadPrefixFilter)),
            )],
            ..DbOptions::default()
        };
        let db = Db::open(&dir, opts).unwrap();
        db.put(Db::DEFAULT_CF, b"dead:a", b"1").unwrap();
        db.put(Db::DEFAULT_CF, b"live:a", b"2").unwrap();
        db.flush().unwrap();
        db.put(Db::DEFAULT_CF, b"dead:b", b"3").unwrap();
        db.put(Db::DEFAULT_CF, b"live:b", b"4").unwrap();
        db.flush().unwrap();
        // Until the compaction runs, filtered keys are still readable.
        assert_eq!(db.get(Db::DEFAULT_CF, b"dead:a").unwrap(), Some(b"1".to_vec()));
        db.compact_cf(Db::DEFAULT_CF).unwrap();
        assert_eq!(db.get(Db::DEFAULT_CF, b"dead:a").unwrap(), None);
        assert_eq!(db.get(Db::DEFAULT_CF, b"dead:b").unwrap(), None);
        assert_eq!(db.get(Db::DEFAULT_CF, b"live:a").unwrap(), Some(b"2".to_vec()));
        assert_eq!(db.get(Db::DEFAULT_CF, b"live:b").unwrap(), Some(b"4".to_vec()));
        let s = db.stats();
        assert_eq!(s.filter_dropped, 2);
        assert_eq!(s.sst_entries, 2);
        db.verify_integrity().unwrap();
    }

    #[test]
    fn filtered_compaction_rewrites_single_sstable() {
        // Without a filter a 1-SST compaction is a no-op; with one it is
        // the on-demand reclaim path.
        let dir = fresh_dir("cfilter1");
        let opts = DbOptions {
            cf_options: vec![(
                "default".to_owned(),
                CfOptions::default().with_filter(Arc::new(DeadPrefixFilter)),
            )],
            ..DbOptions::default()
        };
        let db = Db::open(&dir, opts).unwrap();
        db.put(Db::DEFAULT_CF, b"dead:x", b"1").unwrap();
        db.put(Db::DEFAULT_CF, b"live:x", b"2").unwrap();
        db.flush().unwrap();
        assert_eq!(db.stats().sst_count, 1);
        db.compact_cf(Db::DEFAULT_CF).unwrap();
        let s = db.stats();
        assert_eq!(s.sst_count, 1);
        assert_eq!(s.sst_entries, 1);
        assert_eq!(s.filter_dropped, 1);
        assert_eq!(db.get(Db::DEFAULT_CF, b"dead:x").unwrap(), None);
        assert_eq!(db.get(Db::DEFAULT_CF, b"live:x").unwrap(), Some(b"2".to_vec()));
    }

    #[test]
    fn compaction_of_single_sstable_without_filter_is_noop() {
        // Also pins the file-number leak: a bailed-out compaction must
        // not burn a file number (visible as a gap after the next flush).
        let dir = fresh_dir("compactnoop");
        let db = Db::open(&dir, DbOptions::default()).unwrap();
        db.put(Db::DEFAULT_CF, b"k", b"v").unwrap();
        db.flush().unwrap();
        let before = db.stats();
        db.compact_cf(Db::DEFAULT_CF).unwrap();
        let after = db.stats();
        assert_eq!(before, after);
        db.put(Db::DEFAULT_CF, b"k2", b"v2").unwrap();
        db.flush().unwrap();
        // File numbers are consecutive: the no-op compaction left none.
        assert!(dir.join(sst_file_name(1)).exists());
        assert!(dir.join(sst_file_name(2)).exists());
    }

    #[test]
    fn write_buffer_budget_flushes_largest_memtable() {
        let dir_a = fresh_dir("wb-a");
        let dir_b = fresh_dir("wb-b");
        let budget = WriteBufferBudget::new(4096);
        let mk = |dir: &Path| {
            Db::open(
                dir,
                DbOptions {
                    write_buffer: Some(Arc::clone(&budget)),
                    // Per-CF budgets far above the shared cap: only the
                    // shared budget can force the flush.
                    memtable_budget_bytes: 1 << 30,
                    ..DbOptions::default()
                },
            )
            .unwrap()
        };
        let a = mk(&dir_a);
        let b = mk(&dir_b);
        for i in 0..30u32 {
            a.put(Db::DEFAULT_CF, format!("a{i:03}").as_bytes(), &[1u8; 64])
                .unwrap();
        }
        // `a` holds most of the shared budget; writes to `b` push the
        // total over the cap, and `b` (the observer) sheds its own
        // largest memtable.
        for i in 0..40u32 {
            b.put(Db::DEFAULT_CF, format!("b{i:03}").as_bytes(), &[1u8; 64])
                .unwrap();
        }
        assert!(b.stats().flushes > 0, "shared budget should force a flush");
        assert!(
            budget.used_bytes() <= 2 * budget.cap_bytes(),
            "budget should be shed after flushes: {}",
            budget.used_bytes()
        );
        let used_before_drop = budget.used_bytes();
        drop(a);
        assert!(
            budget.used_bytes() < used_before_drop || used_before_drop == 0,
            "dropping a Db must return its contribution"
        );
        drop(b);
        assert_eq!(budget.used_bytes(), 0);
    }

    #[test]
    fn stats_aggregates_equal_per_cf_sums() {
        let dir = fresh_dir("statsums");
        let db = Db::open(&dir, small_opts()).unwrap();
        let aux = db.create_cf("aux").unwrap();
        for i in 0..300u32 {
            db.put(Db::DEFAULT_CF, format!("k{i:04}").as_bytes(), &[3u8; 48])
                .unwrap();
            if i % 3 == 0 {
                db.put(aux, format!("x{i:04}").as_bytes(), &[4u8; 16]).unwrap();
            }
        }
        db.flush().unwrap();
        db.compact_cf(Db::DEFAULT_CF).unwrap();
        let s = db.stats();
        assert_eq!(s.per_cf.len(), s.column_families);
        assert_eq!(
            s.memtable_bytes,
            s.per_cf.iter().map(|c| c.memtable_bytes).sum::<usize>()
        );
        assert_eq!(
            s.memtable_entries,
            s.per_cf.iter().map(|c| c.memtable_entries).sum::<usize>()
        );
        assert_eq!(s.sst_count, s.per_cf.iter().map(|c| c.sst_count).sum::<usize>());
        assert_eq!(s.sst_entries, s.per_cf.iter().map(|c| c.sst_entries).sum::<u64>());
        assert_eq!(s.sst_bytes, s.per_cf.iter().map(|c| c.sst_bytes).sum::<u64>());
        // Stable across repeated snapshots with no writes in between.
        assert_eq!(db.stats(), db.stats());
    }

    #[test]
    fn cf_options_apply_to_manifest_recovered_cfs() {
        // Filters are attached by *name*, so a reopen re-resolves them for
        // CFs loaded from the manifest.
        let dir = fresh_dir("cfoptsreopen");
        {
            let db = Db::open(&dir, DbOptions::default()).unwrap();
            db.put(Db::DEFAULT_CF, b"dead:z", b"1").unwrap();
            db.put(Db::DEFAULT_CF, b"live:z", b"2").unwrap();
            db.flush().unwrap();
        }
        let opts = DbOptions {
            cf_options: vec![(
                "default".to_owned(),
                CfOptions::default().with_filter(Arc::new(DeadPrefixFilter)),
            )],
            ..DbOptions::default()
        };
        let db = Db::open(&dir, opts).unwrap();
        db.compact_cf(Db::DEFAULT_CF).unwrap();
        assert_eq!(db.get(Db::DEFAULT_CF, b"dead:z").unwrap(), None);
        assert_eq!(db.get(Db::DEFAULT_CF, b"live:z").unwrap(), Some(b"2".to_vec()));
    }
}
